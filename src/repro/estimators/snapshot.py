"""Versioned binary snapshots of the boundary estimator's precompute.

Layout (all integers little-endian, fixed-width, written with ``struct`` —
**no pickle anywhere**, so loading an untrusted file can at worst raise
:class:`~repro.exceptions.EstimatorError`):

.. code-block:: text

    magic        8 bytes   b"RPRESNAP"
    version      u16       SNAPSHOT_VERSION
    byteorder    u8        0 = little, 1 = big (array payloads are native)
    metric       u8        0 = "time", 1 = "distance"
    nx, ny       u16 u16   grid resolution
    node_count   u32
    cell_count   u32
    v_max        f64       network-wide maximum speed (mpm)
    prep_secs    f64       wall-clock seconds the original precompute took
    fingerprint  32 bytes  sha256 of the network's canonical serialization
    5 × array    each:     typecode u8 | itemsize u8 | count u64 | payload

The arrays appear in the fixed order ``node_ids, node_cell, to_boundary,
from_boundary, cell_pair``.  The fingerprint pins a snapshot to one exact
network (nodes, edges, distances, speed patterns, calendar); loading against
anything else refuses with a clear error instead of silently serving bounds
that may no longer be admissible.

**Version 2** appends an optional multi-level overlay section after the
estimator arrays, so one file warm-boots both the boundary estimator and
the hierarchy (see ``docs/hierarchy.md``):

.. code-block:: text

    ovly magic     4 bytes  b"OVLY"
    level_count    u16      | base_nx u16 | base_ny u16 | fanout u16
    horizon_lo/hi  f64 f64
    build_secs     f64
    per level:     nx u16 | ny u16 | cells u32 | boundary u32
                   | build_secs f64 | searches u64
                   5 × array: src(q) dst(q) off(q) xs(d) ys(d)

Version-1 files (no overlay) remain byte-identical to what this module has
always written; the reader accepts both versions.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import struct
import sys
from array import array
from multiprocessing import shared_memory
from pathlib import Path

from .. import reliability
from ..exceptions import EstimatorError
from .precompute import (
    CELL_TYPECODE,
    NODE_ID_TYPECODE,
    WEIGHT_TYPECODE,
    EstimatorTables,
)

MAGIC = b"RPRESNAP"
#: Version written when no overlay is attached (the historical format).
SNAPSHOT_VERSION = 1
#: Version written when an overlay section follows the estimator arrays.
SNAPSHOT_VERSION_OVERLAY = 2
_SUPPORTED_VERSIONS = (SNAPSHOT_VERSION, SNAPSHOT_VERSION_OVERLAY)

_HEADER = struct.Struct("<8sHBBHHIIdd32s")
_ARRAY_HEADER = struct.Struct("<BBQ")

OVERLAY_MAGIC = b"OVLY"
_OVERLAY_HEADER = struct.Struct("<4sHHHHddd")
_LEVEL_HEADER = struct.Struct("<HHIIdQ")
#: (name, typecode) of the five flat stores of one overlay level.
_LEVEL_ARRAY_SPECS = (
    ("src", "q"),
    ("dst", "q"),
    ("off", "q"),
    ("xs", "d"),
    ("ys", "d"),
)

_METRIC_CODES = {"time": 0, "distance": 1}
_METRIC_NAMES = {code: name for name, code in _METRIC_CODES.items()}

#: How many calendar days the fingerprint samples (matches network IO).
_CALENDAR_SAMPLE_DAYS = 366


def network_fingerprint(network) -> bytes:
    """sha256 digest of the network's canonical serialization.

    Covers everything the estimator tables depend on — node locations, edge
    distances, per-edge speed patterns — plus the calendar, so a snapshot is
    pinned to one exact network version.
    """
    h = hashlib.sha256()
    calendar = network.calendar
    doc = {
        "categories": list(calendar.categories.names),
        "calendar_days": [
            calendar.category_for_day(d) for d in range(_CALENDAR_SAMPLE_DAYS)
        ],
    }
    h.update(json.dumps(doc, sort_keys=True).encode())
    for node in sorted(network.nodes(), key=lambda n: n.id):
        h.update(struct.pack("<qdd", node.id, node.x, node.y))
    # Networks share a handful of distinct pattern objects across thousands
    # of edges; digest each object once and splice the cached digest in.
    pattern_digests: dict[int, bytes] = {}
    pack_edge = struct.Struct("<qqd").pack
    pack_piece = struct.Struct("<dd").pack
    for edge in sorted(network.edges(), key=lambda e: (e.source, e.target)):
        h.update(pack_edge(edge.source, edge.target, edge.distance))
        pattern = edge.pattern
        digest = pattern_digests.get(id(pattern))
        if digest is None:
            ph = hashlib.sha256()
            for category in pattern.categories:
                ph.update(category.encode())
                for start, speed in pattern.daily(category).pieces:
                    ph.update(pack_piece(start, speed))
            digest = ph.digest()
            pattern_digests[id(pattern)] = digest
        h.update(digest)
    return h.digest()


def _write_array(out, arr) -> None:
    # Accept both array-module stores and the read-only memoryviews a
    # zero-copy (mmap/shared-memory) EstimatorTables carries.
    typecode = getattr(arr, "typecode", None) or arr.format
    out.write(_ARRAY_HEADER.pack(ord(typecode), arr.itemsize, len(arr)))
    out.write(arr.tobytes())


def _write_overlay_section(out, overlay) -> None:
    """Append the v2 overlay section for a ``MultiLevelOverlay``."""
    horizon = overlay.horizon
    out.write(
        _OVERLAY_HEADER.pack(
            OVERLAY_MAGIC,
            overlay.level_count,
            overlay.grid.shape[0],
            overlay.grid.shape[1],
            overlay.fanout,
            horizon.start,
            horizon.end,
            overlay.stats.build_seconds,
        )
    )
    for level in overlay.levels:
        stats = level.stats
        out.write(
            _LEVEL_HEADER.pack(
                level.nx,
                level.ny,
                stats.cells,
                stats.boundary_nodes,
                stats.build_seconds,
                stats.profile_searches,
            )
        )
        for arr in (level.src, level.dst, level.off, level.xs, level.ys):
            reliability.fire("repro.estimators.snapshot.save")
            _write_array(out, arr)


def save_tables(
    tables: EstimatorTables,
    path: str | Path,
    fingerprint: bytes,
    overlay=None,
) -> None:
    """Write ``tables`` to ``path`` in the versioned binary format.

    Crash-safe: the bytes go to a temporary file in the same directory,
    are fsynced, and only then renamed over ``path`` with ``os.replace``.
    A process killed mid-save leaves either the old snapshot or no
    snapshot — never a truncated ``RPRESNAP`` file.

    With ``overlay`` (a :class:`~repro.hierarchy.overlay.MultiLevelOverlay`)
    the file is written as version 2 with the overlay section appended;
    without it the output is byte-identical to the historical version 1.
    """
    if len(fingerprint) != 32:
        raise EstimatorError("network fingerprint must be a 32-byte sha256")
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as out:
            out.write(
                _HEADER.pack(
                    MAGIC,
                    SNAPSHOT_VERSION
                    if overlay is None
                    else SNAPSHOT_VERSION_OVERLAY,
                    0 if sys.byteorder == "little" else 1,
                    _METRIC_CODES[tables.metric],
                    tables.nx,
                    tables.ny,
                    tables.node_count,
                    tables.cell_count,
                    tables.v_max,
                    tables.precompute_seconds,
                    fingerprint,
                )
            )
            for arr in (
                tables.node_ids,
                tables.node_cell,
                tables.to_boundary,
                tables.from_boundary,
                tables.cell_pair,
            ):
                reliability.fire("repro.estimators.snapshot.save")
                _write_array(out, arr)
            if overlay is not None:
                _write_overlay_section(out, overlay)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


class _BufReader:
    """Sequential cursor over a snapshot buffer with truncation checks."""

    __slots__ = ("buf", "offset", "source")

    def __init__(self, buf: memoryview, source: str) -> None:
        self.buf = buf
        self.offset = 0
        self.source = source

    def take(self, count: int, what: str) -> memoryview:
        end = self.offset + count
        if end > len(self.buf):
            raise EstimatorError(
                f"{self.source}: truncated estimator snapshot "
                f"(while reading {what})"
            )
        view = self.buf[self.offset:end]
        self.offset = end
        return view


def _parse_header(reader: _BufReader) -> dict:
    """Unpack and validate the fixed header; fingerprint check is the
    caller's (``read_header`` reports it, the loaders enforce it)."""
    source = reader.source
    (
        magic,
        version,
        byteorder,
        metric_code,
        nx,
        ny,
        node_count,
        cell_count,
        v_max,
        prep_secs,
        stored_fingerprint,
    ) = _HEADER.unpack(bytes(reader.take(_HEADER.size, "header")))
    if magic != MAGIC:
        raise EstimatorError(f"{source}: not an estimator snapshot")
    if version not in _SUPPORTED_VERSIONS:
        raise EstimatorError(
            f"{source}: unsupported snapshot version {version} "
            f"(this build reads versions "
            f"{' and '.join(str(v) for v in _SUPPORTED_VERSIONS)})"
        )
    metric = _METRIC_NAMES.get(metric_code)
    if metric is None:
        raise EstimatorError(
            f"{source}: corrupt snapshot: unknown metric code {metric_code}"
        )
    return {
        "version": version,
        "byteorder": "big" if byteorder == 1 else "little",
        "metric": metric,
        "nx": nx,
        "ny": ny,
        "node_count": node_count,
        "cell_count": cell_count,
        "v_max": v_max,
        "precompute_seconds": prep_secs,
        "fingerprint": stored_fingerprint,
    }


def _parse_array(
    reader: _BufReader, expected_typecode: str, swap: bool, copy: bool, what: str
):
    source = reader.source
    typecode_byte, itemsize, count = _ARRAY_HEADER.unpack(
        bytes(reader.take(_ARRAY_HEADER.size, f"{what} header"))
    )
    typecode = chr(typecode_byte)
    if typecode != expected_typecode:
        raise EstimatorError(
            f"{source}: corrupt snapshot: {what} has typecode {typecode!r}, "
            f"expected {expected_typecode!r}"
        )
    if itemsize != array(typecode).itemsize:
        raise EstimatorError(
            f"{source}: snapshot written with {itemsize}-byte {typecode!r} "
            f"items; this platform uses {array(typecode).itemsize}"
        )
    payload = reader.take(itemsize * count, what)
    if not copy:
        # Zero-copy: a typed read-only view straight over the backing
        # buffer.  The caller keeps the buffer (mmap / shared memory)
        # alive via EstimatorTables._buffer_owner.
        return payload.cast(typecode)
    arr = array(typecode)
    arr.frombytes(payload)
    if swap:
        arr.byteswap()
    return arr


def parse_tables(
    buf,
    fingerprint: bytes,
    *,
    source: str = "<buffer>",
    copy: bool = True,
    owner: object | None = None,
) -> EstimatorTables:
    """Parse a full RPRESNAP image held in a buffer.

    With ``copy=True`` (the default) every store lands in a private
    ``array`` — byte-for-byte what :func:`load_tables` has always produced.
    With ``copy=False`` the stores are read-only typed memoryviews straight
    over ``buf`` (which must be read-only and outlive the tables — pass the
    keeper as ``owner``); a snapshot written on a foreign-byteorder platform
    cannot be viewed in place and falls back to copying.
    """
    view = memoryview(buf)
    if not view.readonly and not copy:
        view = view.toreadonly()
    reader = _BufReader(view, source)
    header = _parse_header(reader)
    if header["fingerprint"] != fingerprint:
        raise EstimatorError(
            f"{source}: snapshot was built for a different network "
            "(fingerprint mismatch); re-run `repro-allfp precompute`"
        )
    swap = (header["byteorder"] == "big") != (sys.byteorder == "big")
    if swap:
        copy = True  # cannot view foreign-endian payloads in place
    arrays = {
        what: _parse_array(reader, typecode, swap, copy, what)
        for what, typecode in (
            ("node_ids", NODE_ID_TYPECODE),
            ("node_cell", CELL_TYPECODE),
            ("to_boundary", WEIGHT_TYPECODE),
            ("from_boundary", WEIGHT_TYPECODE),
            ("cell_pair", WEIGHT_TYPECODE),
        )
    }
    node_count, cell_count = header["node_count"], header["cell_count"]
    if (
        len(arrays["node_ids"]) != node_count
        or len(arrays["node_cell"]) != node_count
        or len(arrays["to_boundary"]) != node_count
        or len(arrays["from_boundary"]) != node_count
        or len(arrays["cell_pair"]) != cell_count * cell_count
        or cell_count != header["nx"] * header["ny"]
    ):
        raise EstimatorError(f"{source}: corrupt snapshot: array sizes disagree")
    return EstimatorTables(
        nx=header["nx"],
        ny=header["ny"],
        metric=header["metric"],
        v_max=header["v_max"],
        precompute_seconds=header["precompute_seconds"],
        workers_used=1,
        loaded_from_snapshot=True,
        _buffer_owner=None if copy else owner,
        **arrays,
    )


def load_tables(path: str | Path, fingerprint: bytes) -> EstimatorTables:
    """Read a snapshot into private arrays, verifying format and fingerprint.

    Raises :class:`EstimatorError` — never an unpickling error or a raw
    ``struct.error`` — on any of: missing file, wrong magic, unsupported
    version, truncation, corrupt array headers, or a fingerprint that does
    not match ``fingerprint`` (the current network's hash).
    """
    path = Path(path)
    try:
        with open(path, "rb") as f:
            # Payload-free fault point: a "corrupt" spec here raises loudly
            # instead of mutating bytes — a flipped byte inside e.g. v_max
            # would pass every header check and silently break admissibility,
            # which is precisely the outcome injection must never create.
            reliability.fire("repro.estimators.snapshot.load")
            data = f.read()
    except OSError as exc:
        raise EstimatorError(f"cannot open estimator snapshot: {exc}") from None
    return parse_tables(data, fingerprint, source=str(path), copy=True)


def map_tables(path: str | Path, fingerprint: bytes) -> EstimatorTables:
    """The zero-copy load path: ``mmap`` the snapshot read-only and build
    :class:`EstimatorTables` whose stores are typed views over the mapping.

    Every process mapping the same snapshot shares one page-cache copy of
    the tables — N shard workers cost one table, not N.  The mapping is
    kept alive by the returned tables (``_buffer_owner``) and unmapped
    when they are garbage-collected.
    """
    path = Path(path)
    try:
        with open(path, "rb") as f:
            reliability.fire("repro.estimators.snapshot.load")
            mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise EstimatorError(f"cannot map estimator snapshot: {exc}") from None
    try:
        return parse_tables(
            mapped, fingerprint, source=str(path), copy=False, owner=mapped
        )
    except BaseException:
        try:
            mapped.close()
        except BufferError:
            # A view created by the failed parse is still referenced from
            # the traceback; the mapping unmaps when the exception dies.
            pass
        raise


def _skip_arrays(reader: _BufReader, count: int) -> list[tuple[str, int]]:
    """Advance past ``count`` encoded arrays, returning (typecode, len)."""
    seen = []
    for _ in range(count):
        typecode_byte, itemsize, n = _ARRAY_HEADER.unpack(
            bytes(reader.take(_ARRAY_HEADER.size, "array header"))
        )
        reader.take(itemsize * n, "array payload")
        seen.append((chr(typecode_byte), n))
    return seen


def _parse_overlay_section(reader: _BufReader, network, swap: bool, copy: bool):
    """Parse the v2 overlay section into a ``MultiLevelOverlay``."""
    source = reader.source
    (
        magic,
        level_count,
        base_nx,
        base_ny,
        fanout,
        horizon_lo,
        horizon_hi,
        build_seconds,
    ) = _OVERLAY_HEADER.unpack(
        bytes(reader.take(_OVERLAY_HEADER.size, "overlay header"))
    )
    if magic != OVERLAY_MAGIC:
        raise EstimatorError(
            f"{source}: corrupt snapshot: bad overlay section magic"
        )
    if level_count < 1 or fanout < 2 or base_nx < 1 or base_ny < 1:
        raise EstimatorError(
            f"{source}: corrupt snapshot: implausible overlay header "
            f"({level_count} levels, {base_nx}x{base_ny} grid, "
            f"fanout {fanout})"
        )
    # Deferred import: the hierarchy package imports this module's loaders.
    from ..exceptions import QueryError
    from ..hierarchy.overlay import (
        LevelStats,
        MultiLevelOverlay,
        OverlayLevel,
        OverlayStats,
    )
    from ..timeutil import TimeInterval
    from .grid import GridPartition

    grid = GridPartition(network, base_nx, base_ny)
    levels = []
    stats = OverlayStats(build_seconds=build_seconds)
    for k in range(level_count):
        (nx, ny, cells, boundary_nodes, level_seconds, searches) = (
            _LEVEL_HEADER.unpack(
                bytes(
                    reader.take(_LEVEL_HEADER.size, f"overlay level {k} header")
                )
            )
        )
        arrays = {
            name: _parse_array(
                reader, typecode, swap, copy, f"overlay level {k} {name}"
            )
            for name, typecode in _LEVEL_ARRAY_SPECS
        }
        level_stats = LevelStats(
            level=k,
            nx=nx,
            ny=ny,
            cells=cells,
            boundary_nodes=boundary_nodes,
            shortcuts=len(arrays["src"]),
            breakpoints=len(arrays["xs"]),
            profile_searches=searches,
            build_seconds=level_seconds,
        )
        try:
            level = OverlayLevel(
                k,
                nx,
                ny,
                arrays["src"],
                arrays["dst"],
                arrays["off"],
                arrays["xs"],
                arrays["ys"],
                level_stats,
            )
        except QueryError as exc:
            raise EstimatorError(
                f"{source}: corrupt snapshot: {exc}"
            ) from None
        levels.append(level)
        stats.levels.append(level_stats)
    if reader.offset != len(reader.buf):
        raise EstimatorError(
            f"{source}: corrupt snapshot: "
            f"{len(reader.buf) - reader.offset} trailing bytes after overlay"
        )
    return MultiLevelOverlay(
        network,
        grid,
        fanout,
        TimeInterval(horizon_lo, horizon_hi),
        levels,
        stats,
    )


def _overlay_from_buffer(
    buf, network, *, source: str, copy: bool, owner: object | None
):
    view = memoryview(buf)
    if not view.readonly and not copy:
        view = view.toreadonly()
    reader = _BufReader(view, source)
    header = _parse_header(reader)
    if header["version"] != SNAPSHOT_VERSION_OVERLAY:
        raise EstimatorError(
            f"{source}: snapshot has no overlay section (version "
            f"{header['version']}); build one with `repro-allfp "
            "build-overlay`"
        )
    if header["fingerprint"] != network_fingerprint(network):
        raise EstimatorError(
            f"{source}: snapshot was built for a different network "
            "(fingerprint mismatch); re-run `repro-allfp build-overlay`"
        )
    swap = (header["byteorder"] == "big") != (sys.byteorder == "big")
    if swap:
        copy = True  # cannot view foreign-endian payloads in place
    _skip_arrays(reader, len(_ARRAY_SPECS))
    overlay = _parse_overlay_section(reader, network, swap, copy)
    if not copy:
        # The arrays are views over the caller's buffer: keep it mapped for
        # the overlay's lifetime (same idiom as EstimatorTables).
        overlay._buffer_owner = owner
    return overlay


def load_overlay(path: str | Path, network):
    """Read the overlay section of a v2 snapshot into private arrays.

    Verifies the fingerprint against ``network`` and raises
    :class:`EstimatorError` (one line) on a missing file, a version-1
    snapshot, truncation, or any corruption.
    """
    path = Path(path)
    try:
        with open(path, "rb") as f:
            reliability.fire("repro.estimators.snapshot.load")
            data = f.read()
    except OSError as exc:
        raise EstimatorError(f"cannot open estimator snapshot: {exc}") from None
    return _overlay_from_buffer(
        data, network, source=str(path), copy=True, owner=None
    )


def map_overlay(path: str | Path, network):
    """Zero-copy overlay load: shortcut arrays are views over an ``mmap``.

    N serve workers mapping the same snapshot share one page-cache copy of
    every level's shortcut functions; per-node edge objects still
    materialise lazily per process, but only for nodes a query touches.
    """
    path = Path(path)
    try:
        with open(path, "rb") as f:
            reliability.fire("repro.estimators.snapshot.load")
            mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise EstimatorError(f"cannot map estimator snapshot: {exc}") from None
    try:
        return _overlay_from_buffer(
            mapped, network, source=str(path), copy=False, owner=mapped
        )
    except BaseException:
        try:
            mapped.close()
        except BufferError:
            pass
        raise


def tables_to_bytes(tables: EstimatorTables, fingerprint: bytes) -> bytes:
    """The exact RPRESNAP image :func:`save_tables` would write, in memory."""
    out = io.BytesIO()
    out.write(
        _HEADER.pack(
            MAGIC,
            SNAPSHOT_VERSION,
            0 if sys.byteorder == "little" else 1,
            _METRIC_CODES[tables.metric],
            tables.nx,
            tables.ny,
            tables.node_count,
            tables.cell_count,
            tables.v_max,
            tables.precompute_seconds,
            fingerprint,
        )
    )
    for arr in (
        tables.node_ids,
        tables.node_cell,
        tables.to_boundary,
        tables.from_boundary,
        tables.cell_pair,
    ):
        _write_array(out, arr)
    return out.getvalue()


class SharedTables:
    """Owner handle of a shared-memory RPRESNAP image.

    The creating process calls :meth:`unlink` (usually via :meth:`close`)
    exactly once when the last worker is gone; attaching processes only
    ever ``close()`` their mapping.  See ``docs/sharding.md`` for the
    lifecycle caveats.
    """

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass
            self._owner = False

    def unlink(self) -> None:
        self.close()


def share_tables(tables: EstimatorTables, fingerprint: bytes) -> SharedTables:
    """Copy ``tables`` into a named shared-memory segment (RPRESNAP image).

    Returns the owner handle; workers attach by name via
    :func:`attach_tables`.  The owner must :meth:`SharedTables.close`
    (which unlinks) when done, or the segment outlives the process.
    """
    payload = tables_to_bytes(tables, fingerprint)
    try:
        shm = shared_memory.SharedMemory(create=True, size=len(payload))
    except OSError as exc:
        raise EstimatorError(f"cannot create shared-memory tables: {exc}") from None
    shm.buf[: len(payload)] = payload
    return SharedTables(shm, owner=True)


def attach_tables(
    name: str, fingerprint: bytes, *, copy: bool = False
) -> tuple[EstimatorTables, SharedTables]:
    """Attach a worker to a shared-memory RPRESNAP image by segment name.

    With ``copy=False`` the tables are zero-copy views over the segment
    (the handle is kept alive by the tables); ``copy=True`` deliberately
    materialises private arrays — the benchmark's per-process-copy
    baseline.  The returned handle only closes, never unlinks.
    """
    try:
        # track=False (3.13+) stops the resource tracker of an attaching
        # process from destroying the segment at exit; older interpreters
        # don't take the kwarg and the owner's unlink-on-close still wins.
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            shm = shared_memory.SharedMemory(name=name)
    except OSError as exc:
        raise EstimatorError(
            f"cannot attach shared-memory tables {name!r}: {exc}"
        ) from None
    handle = SharedTables(shm, owner=False)
    try:
        view = memoryview(shm.buf).toreadonly()
        tables = parse_tables(
            view,
            fingerprint,
            source=f"shm:{name}",
            copy=copy,
            owner=(view, handle),
        )
    except BaseException:
        handle.close()
        raise
    if copy:
        view.release()  # drop the buffer export so close() can unmap
        handle.close()
    return tables, handle


#: Per-array byte cost used by the header-consistency check and
#: ``snapshot-info``: (name, typecode, count expression).
_ARRAY_SPECS = (
    ("node_ids", NODE_ID_TYPECODE),
    ("node_cell", CELL_TYPECODE),
    ("to_boundary", WEIGHT_TYPECODE),
    ("from_boundary", WEIGHT_TYPECODE),
    ("cell_pair", WEIGHT_TYPECODE),
)


def read_header(path: str | Path) -> dict:
    """Header fields of a snapshot plus size bookkeeping, for operators.

    Validates everything checkable without a network in hand: magic,
    version, metric code, grid/cell consistency, and that the file size
    matches what the header's counts imply.  Raises
    :class:`EstimatorError` (one line) on any corruption.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
    except OSError as exc:
        raise EstimatorError(f"cannot open estimator snapshot: {exc}") from None
    reader = _BufReader(memoryview(head), str(path))
    header = _parse_header(reader)
    if header["cell_count"] != header["nx"] * header["ny"]:
        raise EstimatorError(
            f"{path}: corrupt snapshot: cell_count {header['cell_count']} "
            f"!= {header['nx']}x{header['ny']} grid"
        )
    counts = {
        "node_ids": header["node_count"],
        "node_cell": header["node_count"],
        "to_boundary": header["node_count"],
        "from_boundary": header["node_count"],
        "cell_pair": header["cell_count"] * header["cell_count"],
    }
    expected = _HEADER.size + sum(
        _ARRAY_HEADER.size + counts[name] * array(typecode).itemsize
        for name, typecode in _ARRAY_SPECS
    )
    if header["version"] == SNAPSHOT_VERSION:
        if size != expected:
            raise EstimatorError(
                f"{path}: corrupt snapshot: file is {size} bytes, header "
                f"implies {expected}"
            )
    else:
        header["overlay"] = _read_overlay_header(path, size, expected)
    header["fingerprint"] = header["fingerprint"].hex()
    header["arrays"] = len(_ARRAY_SPECS)
    header["file_bytes"] = size
    return header


def _read_overlay_header(path: Path, size: int, estimator_bytes: int) -> dict:
    """Walk a v2 file's overlay section for ``snapshot-info`` (no network).

    Validates structure and total size; returns the section summary.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise EstimatorError(f"cannot open estimator snapshot: {exc}") from None
    reader = _BufReader(memoryview(data), str(path))
    reader.take(_HEADER.size, "header")
    _skip_arrays(reader, len(_ARRAY_SPECS))
    if reader.offset != estimator_bytes:
        raise EstimatorError(
            f"{path}: corrupt snapshot: estimator arrays occupy "
            f"{reader.offset - _HEADER.size} bytes, header implies "
            f"{estimator_bytes - _HEADER.size}"
        )
    (
        magic,
        level_count,
        base_nx,
        base_ny,
        fanout,
        horizon_lo,
        horizon_hi,
        build_seconds,
    ) = _OVERLAY_HEADER.unpack(
        bytes(reader.take(_OVERLAY_HEADER.size, "overlay header"))
    )
    if magic != OVERLAY_MAGIC:
        raise EstimatorError(
            f"{path}: corrupt snapshot: bad overlay section magic"
        )
    levels = []
    for k in range(level_count):
        (nx, ny, cells, boundary_nodes, level_seconds, searches) = (
            _LEVEL_HEADER.unpack(
                bytes(
                    reader.take(_LEVEL_HEADER.size, f"overlay level {k} header")
                )
            )
        )
        arrays = _skip_arrays(reader, len(_LEVEL_ARRAY_SPECS))
        for (name, want), (got, _n) in zip(_LEVEL_ARRAY_SPECS, arrays):
            if got != want:
                raise EstimatorError(
                    f"{path}: corrupt snapshot: overlay level {k} {name} "
                    f"has typecode {got!r}, expected {want!r}"
                )
        levels.append(
            {
                "level": k,
                "nx": nx,
                "ny": ny,
                "cells": cells,
                "boundary_nodes": boundary_nodes,
                "shortcuts": arrays[0][1],
                "breakpoints": arrays[3][1],
                "profile_searches": searches,
                "build_seconds": level_seconds,
            }
        )
    if reader.offset != size:
        raise EstimatorError(
            f"{path}: corrupt snapshot: file is {size} bytes, overlay "
            f"section implies {reader.offset}"
        )
    return {
        "levels": level_count,
        "base_grid": [base_nx, base_ny],
        "fanout": fanout,
        "horizon": [horizon_lo, horizon_hi],
        "build_seconds": build_seconds,
        "level_details": levels,
    }
