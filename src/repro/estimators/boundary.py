"""The boundary-node lower-bound estimator (§5 of the paper).

Precomputation (once per network):

1. Partition space into grid cells (:class:`~repro.estimators.grid.GridPartition`).
2. For every pair of cells ``(C1, C2)`` store the smallest shortest-path
   weight from any boundary node of ``C1`` to any boundary node of ``C2``.
   Computed with one multi-source Dijkstra per cell ("collapsing the set of
   boundary nodes into a single start node", as the paper puts it).
3. For every node, store the weight of the shortest path *to* the nearest
   boundary node of its own cell and *from* the nearest boundary node of its
   own cell (one extra reverse multi-source Dijkstra per cell).

Query-time bound (paper's Figure 8):

    ``est(n, e) = d(n, ∂C1) + D(C1, C2) + d(∂C2, e)``

Theorem 1's argument: any n→e walk must leave C1 through some boundary node
and enter C2 through some boundary node, and each of the three legs is at
least our precomputed minimum.

Two weight metrics are supported:

* ``"distance"`` — the paper's presentation: edge weight = road length, and
  the final sum is divided by ``v_max`` to yield a time bound.
* ``"time"`` (default) — the paper's omitted "extension to travel time":
  edge weight = length / (that edge's own fastest-ever speed), an optimistic
  per-edge travel time.  Still admissible, and tighter wherever slow local
  roads would otherwise be assumed drivable at highway speed.

The returned bound is ``max(boundary_bound, naive_bound)`` — both are lower
bounds, so their maximum is a (tighter) lower bound; this also covers the
same-cell case the paper leaves unspecified.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Literal

from ..exceptions import EstimatorError
from ..network.model import CapeCodNetwork
from .base import LowerBoundEstimator
from .grid import GridPartition
from .naive import NaiveEstimator

INF = float("inf")

Metric = Literal["time", "distance"]


def _multi_source_dijkstra(
    adjacency: dict[int, list[tuple[int, float]]],
    sources: Iterable[int],
) -> dict[int, float]:
    """Shortest weight from the *set* of sources to every reachable node."""
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        for v, w in adjacency.get(u, ()):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class BoundaryNodeEstimator(LowerBoundEstimator):
    """The paper's §5 precomputation-based estimator (``bdLB``).

    Parameters
    ----------
    network:
        The CapeCod network to precompute over.
    nx, ny:
        Grid resolution.  The paper does not report its resolution; 4 × 4 to
        8 × 8 works well at Suffolk-County scale (see the E-A2 ablation).
    metric:
        ``"time"`` (default, optimistic per-edge travel time) or
        ``"distance"`` (road length, divided by ``v_max`` at query time).
    """

    def __init__(
        self,
        network: CapeCodNetwork,
        nx: int = 4,
        ny: int = 4,
        metric: Metric = "time",
    ) -> None:
        super().__init__()
        if metric not in ("time", "distance"):
            raise EstimatorError(f"unknown metric {metric!r}")
        self._network = network
        self._metric: Metric = metric
        self._naive = NaiveEstimator(network)
        self._grid = GridPartition(network, nx, ny)
        self._v_max = network.max_speed()

        forward: dict[int, list[tuple[int, float]]] = {}
        backward: dict[int, list[tuple[int, float]]] = {}
        for edge in network.edges():
            w = self._edge_weight(edge.distance, edge.pattern.max_speed())
            forward.setdefault(edge.source, []).append((edge.target, w))
            backward.setdefault(edge.target, []).append((edge.source, w))

        n_cells = self._grid.cell_count
        #: weight of cheapest boundary(C1) -> boundary(C2) path, per cell pair
        self._cell_pair: list[list[float]] = [
            [INF] * n_cells for _ in range(n_cells)
        ]
        #: per node: weight to the nearest boundary node of its own cell
        self._to_boundary: dict[int, float] = {}
        #: per node: weight from the nearest boundary node of its own cell
        self._from_boundary: dict[int, float] = {}

        for cell in self._grid.cells():
            if not cell.members:
                continue
            if not cell.boundary:
                # A cell with members but no boundary can only occur in a
                # disconnected network; leave its rows at infinity.
                continue
            dist_from = _multi_source_dijkstra(forward, cell.boundary)
            dist_to = _multi_source_dijkstra(backward, cell.boundary)
            for member in cell.members:
                self._from_boundary[member] = dist_from.get(member, INF)
                self._to_boundary[member] = dist_to.get(member, INF)
            row = self._cell_pair[cell.index]
            for other in self._grid.cells():
                if other.index == cell.index or not other.boundary:
                    continue
                best = min(
                    (dist_from.get(b, INF) for b in other.boundary),
                    default=INF,
                )
                row[other.index] = best

    # ------------------------------------------------------------------
    def _edge_weight(self, distance: float, max_speed: float) -> float:
        if self._metric == "time":
            return distance / max_speed
        return distance

    def _as_minutes(self, weight: float) -> float:
        if weight == INF:
            return INF
        if self._metric == "time":
            return weight
        return weight / self._v_max

    # ------------------------------------------------------------------
    @property
    def grid(self) -> GridPartition:
        return self._grid

    @property
    def metric(self) -> Metric:
        return self._metric

    def prepare(self, target: int) -> None:
        super().prepare(target)
        self._naive.prepare(target)
        self._target_cell = self._grid.cell_of_node(target)
        self._target_from_boundary = self._from_boundary.get(target, INF)

    def boundary_bound(self, node: int) -> float:
        """The raw §5 bound in minutes (``inf`` when inapplicable)."""
        target_cell = self._target_cell
        node_cell = self._grid.cell_of_node(node)
        if node_cell == target_cell:
            return INF  # same-cell case: the paper's formula does not apply
        leg1 = self._to_boundary.get(node, INF)
        leg2 = self._cell_pair[node_cell][target_cell]
        leg3 = self._target_from_boundary
        total = leg1 + leg2 + leg3
        return self._as_minutes(total)

    def bound(self, node: int) -> float:
        if node == self.target:
            return 0.0
        naive = self._naive.bound(node)
        boundary = self.boundary_bound(node)
        if boundary == INF:
            return naive
        return max(naive, boundary)

    @property
    def name(self) -> str:
        return "bdLB"
