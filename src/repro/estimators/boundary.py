"""The boundary-node lower-bound estimator (§5 of the paper).

Precomputation (once per network):

1. Partition space into grid cells (:class:`~repro.estimators.grid.GridPartition`).
2. For every pair of cells ``(C1, C2)`` store the smallest shortest-path
   weight from any boundary node of ``C1`` to any boundary node of ``C2``.
   Computed with one multi-source Dijkstra per cell ("collapsing the set of
   boundary nodes into a single start node", as the paper puts it).
3. For every node, store the weight of the shortest path *to* the nearest
   boundary node of its own cell and *from* the nearest boundary node of its
   own cell (one extra reverse multi-source Dijkstra per cell).

Query-time bound (paper's Figure 8):

    ``est(n, e) = d(n, ∂C1) + D(C1, C2) + d(∂C2, e)``

Theorem 1's argument: any n→e walk must leave C1 through some boundary node
and enter C2 through some boundary node, and each of the three legs is at
least our precomputed minimum.

Two weight metrics are supported:

* ``"distance"`` — the paper's presentation: edge weight = road length, and
  the final sum is divided by ``v_max`` to yield a time bound.
* ``"time"`` (default) — the paper's omitted "extension to travel time":
  edge weight = length / (that edge's own fastest-ever speed), an optimistic
  per-edge travel time.  Still admissible, and tighter wherever slow local
  roads would otherwise be assumed drivable at highway speed.

The returned bound is ``max(boundary_bound, naive_bound)`` — both are lower
bounds, so their maximum is a (tighter) lower bound; this also covers the
same-cell case the paper leaves unspecified.

Two precompute backends produce bitwise-identical tables:

* ``"array"`` (default) — :mod:`repro.estimators.precompute`: dense-indexed
  Dijkstras, optional ``multiprocessing`` fan-out across cells, and flat
  ``array``-module stores on the hot ``bound()`` path.
* ``"dict"`` — the original serial dict-of-dict implementation, kept as the
  parity baseline for tests and benchmarks.

Precomputation is **idempotent and lazy-capable**: it runs eagerly in the
constructor by default (``defer=False``), but calling :meth:`precompute`
again is a no-op, and :meth:`from_snapshot` skips it entirely by loading a
versioned binary snapshot (see :mod:`repro.estimators.snapshot`) whose
network fingerprint matches.
"""

from __future__ import annotations

import heapq
import time
from pathlib import Path
from typing import Iterable, Literal

from ..exceptions import EstimatorError
from ..network.model import CapeCodNetwork
from .base import LowerBoundEstimator
from .grid import GridPartition
from .naive import NaiveEstimator
from .precompute import EstimatorTables, compute_tables, refresh_tables_delta

INF = float("inf")

Metric = Literal["time", "distance"]
Backend = Literal["array", "dict"]


def _multi_source_dijkstra(
    adjacency: dict[int, list[tuple[int, float]]],
    sources: Iterable[int],
) -> dict[int, float]:
    """Shortest weight from the *set* of sources to every reachable node.

    Stale heap entries (popped after a cheaper one already settled the
    node) are skipped before touching the adjacency list, so
    decrease-key-by-reinsert never triggers redundant neighbor relaxations.
    """
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue  # stale entry: u was settled by a cheaper path
        for v, w in adjacency.get(u, ()):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class BoundaryNodeEstimator(LowerBoundEstimator):
    """The paper's §5 precomputation-based estimator (``bdLB``).

    Parameters
    ----------
    network:
        The CapeCod network to precompute over.
    nx, ny:
        Grid resolution.  The paper does not report its resolution; 4 × 4 to
        8 × 8 works well at Suffolk-County scale (see the E-A2 ablation).
    metric:
        ``"time"`` (default, optimistic per-edge travel time) or
        ``"distance"`` (road length, divided by ``v_max`` at query time).
    workers:
        Process count for the parallel precompute (``1`` = serial).  Only
        meaningful with the ``"array"`` backend.
    backend:
        ``"array"`` (flat stores, parallel-capable) or ``"dict"`` (the
        legacy serial implementation; parity baseline).
    defer:
        When true, skip precomputation until :meth:`precompute` (or the
        first :meth:`prepare`) runs.
    tables:
        Pre-built :class:`~repro.estimators.precompute.EstimatorTables`
        (e.g. loaded from a snapshot); implies the ``"array"`` backend and
        skips the Dijkstras entirely.
    """

    def __init__(
        self,
        network: CapeCodNetwork,
        nx: int = 4,
        ny: int = 4,
        metric: Metric = "time",
        *,
        workers: int = 1,
        backend: Backend = "array",
        defer: bool = False,
        tables: EstimatorTables | None = None,
    ) -> None:
        super().__init__()
        if metric not in ("time", "distance"):
            raise EstimatorError(f"unknown metric {metric!r}")
        if backend not in ("array", "dict"):
            raise EstimatorError(f"unknown precompute backend {backend!r}")
        if workers < 1:
            raise EstimatorError(f"workers must be >= 1, got {workers}")
        self._network = network
        self._metric: Metric = metric
        self._workers = workers
        self._backend: Backend = "array" if tables is not None else backend
        self._naive = NaiveEstimator(network)
        self._grid = GridPartition(network, nx, ny)
        self._v_max = network.max_speed()

        #: array backend: flat stores (None until precomputed)
        self._tables: EstimatorTables | None = None
        #: hot-path views of the table internals — ``bound()`` touches these
        #: instead of going through the dataclass.  The per-node stores are
        #: materialized as lists once per adoption: a list is a contiguous
        #: pointer array, so dense-index reads neither hash (dict backend)
        #: nor box a fresh float per access (raw ``array`` reads do).
        self._a_node_cell: list[int] | None = None
        self._a_to_boundary: list[float] | None = None
        self._a_index_of: dict[int, int] | None = None
        self._a_dense = False
        self._a_n = 0
        #: per-target column of D(·, target_cell), hoisted by ``prepare``
        self._target_col: list[float] | None = None
        self._time_metric = metric == "time"
        #: dict backend: the legacy dict-of-dict stores
        self._cell_pair: list[list[float]] | None = None
        self._to_boundary: dict[int, float] | None = None
        self._from_boundary: dict[int, float] | None = None
        #: wall-clock seconds the last real precompute took (0 when skipped)
        self.precompute_seconds: float = 0.0

        if tables is not None:
            self._adopt_tables(tables)
        elif not defer:
            self.precompute()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    @property
    def is_precomputed(self) -> bool:
        return self._tables is not None or self._cell_pair is not None

    @property
    def loaded_from_snapshot(self) -> bool:
        return self._tables is not None and self._tables.loaded_from_snapshot

    @property
    def tables(self) -> EstimatorTables | None:
        """The flat precomputed stores (``None`` for the dict backend)."""
        return self._tables

    def _adopt_tables(self, tables: EstimatorTables) -> None:
        nx, ny = self._grid.shape
        if (tables.nx, tables.ny) != (nx, ny):
            raise EstimatorError(
                f"tables were built for a {tables.nx}x{tables.ny} grid, "
                f"estimator uses {nx}x{ny}"
            )
        if tables.metric != self._metric:
            raise EstimatorError(
                f"tables use metric {tables.metric!r}, "
                f"estimator uses {self._metric!r}"
            )
        if tables.node_count != self._network.node_count:
            raise EstimatorError(
                f"tables cover {tables.node_count} nodes, "
                f"network has {self._network.node_count}"
            )
        self._tables = tables
        self._a_node_cell = tables.node_cell.tolist()
        self._a_to_boundary = tables.to_boundary.tolist()
        self._a_index_of = tables._index_of
        self._a_dense = tables.dense
        self._a_n = tables.node_count
        self.precompute_seconds = (
            0.0 if tables.loaded_from_snapshot else tables.precompute_seconds
        )

    def precompute(self, workers: int | None = None) -> None:
        """Run the per-cell Dijkstras once; repeated calls are no-ops."""
        if self.is_precomputed:
            return
        if self._backend == "array":
            tables = compute_tables(
                self._network,
                self._grid,
                self._metric,
                workers=workers if workers is not None else self._workers,
            )
            self._adopt_tables(tables)
        else:
            started = time.perf_counter()
            self._precompute_dict()
            self.precompute_seconds = time.perf_counter() - started

    def _precompute_dict(self) -> None:
        """The original serial dict-of-dict precompute (parity baseline)."""
        forward: dict[int, list[tuple[int, float]]] = {}
        backward: dict[int, list[tuple[int, float]]] = {}
        for edge in self._network.edges():
            w = self._edge_weight(edge.distance, edge.pattern.max_speed())
            forward.setdefault(edge.source, []).append((edge.target, w))
            backward.setdefault(edge.target, []).append((edge.source, w))

        n_cells = self._grid.cell_count
        cell_pair: list[list[float]] = [[INF] * n_cells for _ in range(n_cells)]
        to_boundary: dict[int, float] = {}
        from_boundary: dict[int, float] = {}

        for cell in self._grid.cells():
            if not cell.members:
                continue
            if not cell.boundary:
                # A cell with members but no boundary can only occur in a
                # disconnected network; leave its rows at infinity.
                continue
            dist_from = _multi_source_dijkstra(forward, cell.boundary)
            dist_to = _multi_source_dijkstra(backward, cell.boundary)
            for member in cell.members:
                from_boundary[member] = dist_from.get(member, INF)
                to_boundary[member] = dist_to.get(member, INF)
            row = cell_pair[cell.index]
            for other in self._grid.cells():
                if other.index == cell.index or not other.boundary:
                    continue
                best = min(
                    (dist_from.get(b, INF) for b in other.boundary),
                    default=INF,
                )
                row[other.index] = best

        self._cell_pair = cell_pair
        self._to_boundary = to_boundary
        self._from_boundary = from_boundary

    def refresh(self) -> None:
        """Drop the tables and precompute again (after a network update)."""
        self._tables = None
        self._a_node_cell = None
        self._a_to_boundary = None
        self._a_index_of = None
        self._target_col = None
        self._cell_pair = None
        self._to_boundary = None
        self._from_boundary = None
        self._naive = NaiveEstimator(self._network)
        self._v_max = self._network.max_speed()
        self.precompute()

    def refresh_delta(self, mutations, workers: int | None = None) -> None:
        """Targeted refresh after edge-pattern mutations (§2.2 updates).

        Only the cells containing a mutated edge's endpoints are
        recomputed; every other entry gets the admissibility-preserving
        slack correction (see
        :func:`~repro.estimators.precompute.refresh_tables_delta`).  The
        naive component is rebuilt too, so a mutation that raises the
        network-wide ``v_max`` cannot leave an inadmissible Euclidean
        bound behind.  Falls back to a full :meth:`refresh` for the dict
        backend or when nothing was precomputed yet.
        """
        if self._tables is None:
            self.refresh()
            return
        tables = refresh_tables_delta(
            self._tables,
            self._network,
            self._grid,
            mutations,
            workers=workers if workers is not None else self._workers,
        )
        self._naive = NaiveEstimator(self._network)
        self._v_max = self._network.max_speed()
        self._target_col = None
        self._adopt_tables(tables)

    # ------------------------------------------------------------------
    # Snapshot persistence
    # ------------------------------------------------------------------
    def save_snapshot(self, path: str | Path) -> Path:
        """Persist the precomputed tables (array backend only)."""
        from .snapshot import network_fingerprint, save_tables

        self.precompute()
        if self._tables is None:
            raise EstimatorError(
                "snapshots require the 'array' precompute backend"
            )
        path = Path(path)
        save_tables(self._tables, path, network_fingerprint(self._network))
        return path

    @classmethod
    def from_snapshot(
        cls, network: CapeCodNetwork, path: str | Path
    ) -> "BoundaryNodeEstimator":
        """Build an estimator from a snapshot, skipping all Dijkstras.

        Raises :class:`~repro.exceptions.EstimatorError` when the file is
        malformed or was built for a different network (fingerprint
        mismatch) — never silently serves stale bounds.
        """
        from .snapshot import load_tables, network_fingerprint

        tables = load_tables(path, network_fingerprint(network))
        return cls(
            network,
            tables.nx,
            tables.ny,
            tables.metric,  # type: ignore[arg-type]
            tables=tables,
        )

    # ------------------------------------------------------------------
    def _edge_weight(self, distance: float, max_speed: float) -> float:
        if self._metric == "time":
            return distance / max_speed
        return distance

    def _as_minutes(self, weight: float) -> float:
        if weight == INF:
            return INF
        if self._metric == "time":
            return weight
        return weight / self._v_max

    # ------------------------------------------------------------------
    @property
    def grid(self) -> GridPartition:
        return self._grid

    @property
    def metric(self) -> Metric:
        return self._metric

    @property
    def backend(self) -> Backend:
        return self._backend

    def prepare(self, target: int) -> None:
        super().prepare(target)
        self.precompute()
        self._naive.prepare(target)
        self._target_cell = self._grid.cell_of_node(target)
        tables = self._tables
        if tables is not None:
            self._target_from_boundary = tables.from_boundary[
                tables.index(target)
            ]
            # Hoist this target's column of D(C1, C2): one boxed-float list
            # of cell_count entries, so bound() does two list reads total.
            n_cells = tables.cell_count
            self._target_col = tables.cell_pair[
                self._target_cell::n_cells
            ].tolist()
        else:
            assert self._from_boundary is not None
            self._target_from_boundary = self._from_boundary.get(target, INF)

    def boundary_bound(self, node: int) -> float:
        """The raw §5 bound in minutes (``inf`` when inapplicable)."""
        node_cells = self._a_node_cell
        if node_cells is not None:
            if self._a_dense:
                if 0 <= node < self._a_n:
                    idx = node
                else:
                    raise EstimatorError(
                        f"node {node} not in precomputed tables"
                    )
            else:
                try:
                    idx = self._a_index_of[node]  # type: ignore[index]
                except KeyError:
                    raise EstimatorError(
                        f"node {node} not in precomputed tables"
                    ) from None
            node_cell = node_cells[idx]
            if node_cell == self._target_cell:
                return INF  # same-cell case: the formula does not apply
            total = (
                self._a_to_boundary[idx]
                + self._target_col[node_cell]
                + self._target_from_boundary
            )
            if self._time_metric:
                return total
            return total / self._v_max  # INF / v_max is still INF
        target_cell = self._target_cell
        node_cell = self._grid.cell_of_node(node)
        if node_cell == target_cell:
            return INF  # same-cell case: the paper's formula does not apply
        assert self._to_boundary is not None and self._cell_pair is not None
        leg1 = self._to_boundary.get(node, INF)
        leg2 = self._cell_pair[node_cell][target_cell]
        leg3 = self._target_from_boundary
        total = leg1 + leg2 + leg3
        return self._as_minutes(total)

    def bound(self, node: int) -> float:
        if node == self.target:
            return 0.0
        naive = self._naive.bound(node)
        boundary = self.boundary_bound(node)
        if boundary == INF:
            return naive
        return max(naive, boundary)

    @property
    def name(self) -> str:
        return "bdLB"
