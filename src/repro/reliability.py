"""Deterministic fault injection and the degradation primitives it exercises.

The production story of this repo (serve pool, estimator precompute, CCAM
storage) needs a *provable* answer to "what happens when parts fail".  This
module provides it in three pieces:

* :class:`FaultPlan` / :class:`FaultInjector` — a **seeded** description of
  which named injection points misbehave, how (raise, delay, or corrupt),
  and with what probability.  The same plan seed always yields the same
  per-spec decision sequence, so a chaos run is reproducible in CI.
* module-level :func:`fire` — the hook the instrumented call sites invoke.
  With no injector installed it is a single global load and compare, cheap
  enough for hot paths like page reads.
* :class:`CircuitBreaker` — the classic closed → open → half-open gate the
  serve layer wraps around estimator cloning/refresh so a persistently
  failing estimator degrades to the naive bound instead of failing every
  request.

Injection points are dotted names mirroring the module that hosts them
(``repro.storage.pages.read``, ``repro.serve.service.task`` …); a spec's
``point`` matches exactly or by dotted prefix, so ``repro.storage`` targets
every storage-layer site at once.  The full list is documented in
``docs/reliability.md``.

Activation is programmatic (:func:`install`) or via the ``REPRO_FAULTS``
environment variable holding either inline JSON or a path to a JSON file —
read once at import, so CLI verbs and forked precompute workers inherit the
plan without extra wiring.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .exceptions import EstimatorError, InjectedFault, StorageError

MODES = ("error", "delay", "corrupt")

#: Exception classes a spec's ``error`` key may name.  ``"crash"`` is a
#: deliberate *untyped* error (plain RuntimeError): it simulates a bug or a
#: dying worker, exercising the paths that must never leak a traceback to a
#: client.  Everything else is a typed :class:`~repro.exceptions.ReproError`.
ERROR_TYPES = {
    "fault": InjectedFault,
    "storage": StorageError,
    "estimator": EstimatorError,
    "os": OSError,
    "crash": RuntimeError,
}

#: Cap on retained history events — counters keep counting past this.
MAX_HISTORY = 10_000

ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a :class:`FaultPlan`.

    ``point`` names an injection point, exactly or as a dotted prefix.
    ``mode`` is ``"error"`` (raise ``ERROR_TYPES[error]``), ``"delay"``
    (sleep ``delay_seconds``), or ``"corrupt"`` (flip one byte of the
    payload; sites without a byte payload raise instead).  ``probability``
    is the per-arrival firing chance and ``max_fires`` bounds the total
    number of firings (``None`` = unlimited).
    """

    point: str
    mode: str = "error"
    probability: float = 1.0
    max_fires: int | None = None
    delay_seconds: float = 0.01
    error: str = "fault"
    message: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; expected one of {MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.error not in ERROR_TYPES:
            raise ValueError(
                f"unknown error type {self.error!r}; expected one of {sorted(ERROR_TYPES)}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    def matches(self, point: str) -> bool:
        return point == self.point or point.startswith(self.point + ".")

    def as_dict(self) -> dict:
        return {
            "point": self.point,
            "mode": self.mode,
            "probability": self.probability,
            "max_fires": self.max_fires,
            "delay_seconds": self.delay_seconds,
            "error": self.error,
            "message": self.message,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs it parameterises.

    The seed feeds one independent RNG per spec (derived as
    ``sha256(seed | spec.point | spec_index)``), so the decision sequence of
    each spec depends only on the plan and that spec's own arrival order —
    not on how unrelated points interleave.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError("fault plan must be a JSON object")
        raw = doc.get("faults", [])
        if not isinstance(raw, list):
            raise ValueError("'faults' must be a list of spec objects")
        specs = []
        for entry in raw:
            if not isinstance(entry, dict) or "point" not in entry:
                raise ValueError(f"malformed fault spec: {entry!r}")
            known = {
                k: entry[k]
                for k in (
                    "point", "mode", "probability", "max_fires",
                    "delay_seconds", "error", "message",
                )
                if k in entry
            }
            specs.append(FaultSpec(**known))
        return cls(seed=int(doc.get("seed", 0)), specs=tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    def as_dict(self) -> dict:
        return {"seed": self.seed, "faults": [s.as_dict() for s in self.specs]}


@dataclass(frozen=True)
class FaultEvent:
    """One recorded firing: global sequence number, site, rule, action."""

    seq: int
    point: str
    spec_point: str
    mode: str


class _SpecState:
    __slots__ = ("spec", "rng", "fires")

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        digest = hashlib.sha256(f"{seed}|{spec.point}|{index}".encode()).digest()
        self.rng = random.Random(int.from_bytes(digest[:8], "little"))
        self.fires = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every :func:`fire` call site.

    Thread-safe; decisions are drawn under one lock so each spec's RNG
    consumes draws strictly in arrival order.  The first matching,
    non-exhausted spec that fires wins for a given arrival.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._states = [
            _SpecState(spec, plan.seed, i) for i, spec in enumerate(plan.specs)
        ]
        self._history: list[FaultEvent] = []
        self._hits: dict[str, int] = {}
        self._seq = 0
        self.fired = 0

    def fire(self, point: str, data: bytes | None = None) -> bytes | None:
        """Evaluate ``point``; may raise, sleep, or return corrupted data."""
        spec = None
        extra_draw = 0.0
        with self._lock:
            self._hits[point] = self._hits.get(point, 0) + 1
            for state in self._states:
                cand = state.spec
                if not cand.matches(point):
                    continue
                if cand.max_fires is not None and state.fires >= cand.max_fires:
                    continue
                if state.rng.random() >= cand.probability:
                    continue
                state.fires += 1
                if cand.mode == "corrupt":
                    extra_draw = state.rng.random()
                self._seq += 1
                self.fired += 1
                if len(self._history) < MAX_HISTORY:
                    self._history.append(
                        FaultEvent(self._seq, point, cand.point, cand.mode)
                    )
                spec = cand
                break
        if spec is None:
            return data
        if spec.mode == "delay":
            time.sleep(spec.delay_seconds)
            return data
        if spec.mode == "corrupt":
            if data is None:
                raise InjectedFault(
                    f"injected corruption at {point} (site carries no payload)"
                )
            index = min(int(extra_draw * len(data)), len(data) - 1) if data else 0
            mutated = bytearray(data)
            if mutated:
                mutated[index] ^= 0xFF
            return bytes(mutated)
        message = spec.message or f"injected {spec.error} fault at {point}"
        raise ERROR_TYPES[spec.error](message)

    # ------------------------------------------------------------------
    def history(self) -> tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self._history)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "fired": self.fired,
                "hits": dict(self._hits),
                "specs": [
                    {"point": s.spec.point, "mode": s.spec.mode, "fires": s.fires}
                    for s in self._states
                ],
            }


# ----------------------------------------------------------------------
# Module-level installation (what the instrumented call sites consult)
# ----------------------------------------------------------------------

_INJECTOR: FaultInjector | None = None


def install(plan: FaultPlan | FaultInjector) -> FaultInjector:
    """Install a plan (or a prepared injector) process-wide; returns it."""
    global _INJECTOR
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _INJECTOR = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector; :func:`fire` becomes a no-op again."""
    global _INJECTOR
    _INJECTOR = None


def get() -> FaultInjector | None:
    return _INJECTOR


def is_active() -> bool:
    return _INJECTOR is not None


def fire(point: str, data: bytes | None = None) -> bytes | None:
    """Hook called by instrumented sites; near-free when nothing is installed."""
    injector = _INJECTOR
    if injector is None:
        return data
    return injector.fire(point, data)


def fired_total() -> int:
    """Total injected faults so far (0 when no injector is installed)."""
    injector = _INJECTOR
    return 0 if injector is None else injector.fired


def install_from_env(environ=os.environ) -> FaultInjector | None:
    """Install from ``REPRO_FAULTS`` (inline JSON or a path); None if unset."""
    raw = environ.get(ENV_VAR)
    if not raw:
        return None
    text = raw.strip()
    if not text.startswith("{"):
        with open(text, "r", encoding="utf-8") as f:
            text = f.read()
    return install(FaultPlan.from_json(text))


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open failure gate.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_timeout`` seconds one trial call is allowed (half-open), whose
    outcome closes or re-opens it.  ``clock`` is injectable so tests drive
    the timeline deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        self._lock = threading.Lock()
        self._threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self._reset_timeout
        ):
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed; a half-open allow claims the one trial."""
        with self._lock:
            if self._state == "closed":
                return True
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self._reset_timeout
            ):
                # Claim the single trial; concurrent callers stay blocked
                # until record_success/record_failure resolves it.
                self._state = "half_open"
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self._threshold:
                if self._state != "open":
                    self.opened_total += 1
                self._state = "open"
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "failures": self._failures,
                "threshold": self._threshold,
                "opened_total": self.opened_total,
            }


# One-time env activation: CLI runs and forked workers pick the plan up
# without any explicit install() call.
if os.environ.get(ENV_VAR):  # pragma: no cover - exercised via subprocess
    install_from_env()
