"""Continuous piecewise-linear functions over a closed interval.

A :class:`PiecewiseLinearFunction` is stored as a sequence of breakpoints
``(x_0, y_0), ..., (x_k, y_k)`` with strictly increasing ``x`` and linear
interpolation between consecutive breakpoints; the domain is ``[x_0, x_k]``.
All functions in this library are continuous — the paper proves travel-time
functions on CapeCod networks are continuous piecewise linear (§4.1).

Design notes
------------
* Breakpoints are plain floats; a global tolerance :data:`XTOL` governs when
  two abscissae are considered equal.  Values (``y``) are compared with
  :data:`YTOL` where a tolerance is needed.
* Instances are immutable: every operation returns a new function.  This keeps
  priority-queue entries safe to share.
* A function may consist of a single breakpoint, in which case its domain is a
  single instant — the degenerate "leave exactly at time t" query.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..exceptions import FunctionDomainError, FunctionShapeError
from . import kernel

#: Tolerance for comparing abscissae (times, in minutes).
XTOL = 1e-9
#: Tolerance for comparing ordinates (travel times, in minutes).
YTOL = 1e-9
#: Tolerance for deciding that two breakpoints sharing (nearly) the same
#: abscissa describe the *same* point rather than a jump discontinuity.
#: Deliberately looser than :data:`YTOL`: merged breakpoints come from
#: independently-computed operations whose values agree only up to
#: accumulated rounding, whereas YTOL compares values produced by one
#: computation.  The kernel and the legacy paths both use this constant, so
#: the two implementations agree on equality.
CONTINUITY_TOL = 1e-6


@dataclass(frozen=True)
class LinearPiece:
    """One linear piece ``y = slope * x + intercept`` on ``[x_start, x_end]``."""

    x_start: float
    x_end: float
    slope: float
    intercept: float

    def value_at(self, x: float) -> float:
        """Evaluate the piece's line at ``x`` (no domain check)."""
        return self.slope * x + self.intercept

    @property
    def y_start(self) -> float:
        return self.value_at(self.x_start)

    @property
    def y_end(self) -> float:
        return self.value_at(self.x_end)


def _dedupe_points(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Drop consecutive points with (near-)equal x, keeping the first.

    Raises if two near-equal abscissae carry conflicting ordinates, which
    would make the input discontinuous.
    """
    cleaned: list[tuple[float, float]] = []
    for x, y in points:
        if cleaned and x <= cleaned[-1][0] + XTOL:
            if abs(y - cleaned[-1][1]) > CONTINUITY_TOL:
                raise FunctionShapeError(
                    f"discontinuity at x={x}: y={cleaned[-1][1]} vs y={y}"
                )
            continue
        cleaned.append((float(x), float(y)))
    return cleaned


class PiecewiseLinearFunction:
    """An immutable continuous piecewise-linear function on a closed interval.

    Parameters
    ----------
    points:
        Breakpoints ``(x, y)`` with nondecreasing ``x``.  Consecutive points
        closer than :data:`XTOL` in ``x`` are merged (they must then agree in
        ``y``).  At least one point is required.
    """

    __slots__ = ("_xs", "_ys")

    def __init__(self, points: Iterable[tuple[float, float]]) -> None:
        pts = list(points)
        if not pts:
            raise FunctionShapeError("a piecewise function needs >= 1 breakpoint")
        for i in range(1, len(pts)):
            if pts[i][0] < pts[i - 1][0] - XTOL:
                raise FunctionShapeError(
                    f"breakpoint abscissae must be nondecreasing; "
                    f"got {pts[i - 1][0]} then {pts[i][0]}"
                )
        cleaned = _dedupe_points(pts)
        for x, y in cleaned:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise FunctionShapeError(f"non-finite breakpoint ({x}, {y})")
        self._xs: tuple[float, ...] = tuple(p[0] for p in cleaned)
        self._ys: tuple[float, ...] = tuple(p[1] for p in cleaned)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _trusted(
        cls, xs: tuple[float, ...], ys: tuple[float, ...]
    ) -> "PiecewiseLinearFunction":
        """Bypass validation for breakpoints already known to be well formed.

        Internal fast path for element-wise operations (adding a scalar,
        subtracting the identity, ...) and for kernel outputs, which are well
        formed by construction.  Instantiates ``cls``, so monotone subclasses
        can reuse it once their own invariant is established.
        """
        obj = object.__new__(cls)
        obj._xs = xs
        obj._ys = ys
        return obj

    @classmethod
    def constant(cls, lo: float, hi: float, value: float) -> "PiecewiseLinearFunction":
        """A constant function ``value`` on ``[lo, hi]``."""
        if hi < lo - XTOL:
            raise FunctionShapeError(f"empty domain [{lo}, {hi}]")
        if hi - lo <= XTOL:
            return cls([(lo, value)])
        return cls([(lo, value), (hi, value)])

    @classmethod
    def linear(
        cls, lo: float, hi: float, slope: float, intercept: float
    ) -> "PiecewiseLinearFunction":
        """The line ``slope * x + intercept`` restricted to ``[lo, hi]``."""
        if hi - lo <= XTOL:
            return cls([(lo, slope * lo + intercept)])
        return cls([(lo, slope * lo + intercept), (hi, slope * hi + intercept)])

    @classmethod
    def from_callable(
        cls, fn: Callable[[float], float], breakpoints: Sequence[float]
    ) -> "PiecewiseLinearFunction":
        """Sample ``fn`` at the given abscissae (assumed linear in between)."""
        return cls([(x, fn(x)) for x in breakpoints])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def x_min(self) -> float:
        return self._xs[0]

    @property
    def x_max(self) -> float:
        return self._xs[-1]

    @property
    def domain(self) -> tuple[float, float]:
        """The closed domain ``[x_min, x_max]``."""
        return (self._xs[0], self._xs[-1])

    @property
    def breakpoints(self) -> tuple[tuple[float, float], ...]:
        """All breakpoints as ``(x, y)`` pairs."""
        return tuple(zip(self._xs, self._ys))

    @property
    def is_instant(self) -> bool:
        """True when the domain is a single point."""
        return len(self._xs) == 1

    def __len__(self) -> int:
        return len(self._xs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pts = ", ".join(f"({x:g}, {y:g})" for x, y in self.breakpoints[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"PiecewiseLinearFunction([{pts}{suffix}])"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _locate(self, x: float) -> int:
        """Index ``i`` such that x lies in segment [xs[i], xs[i+1]] (clamped)."""
        if x < self._xs[0] - XTOL or x > self._xs[-1] + XTOL:
            raise FunctionDomainError(
                f"x={x} outside domain [{self._xs[0]}, {self._xs[-1]}]"
            )
        i = bisect.bisect_right(self._xs, x) - 1
        return min(max(i, 0), max(len(self._xs) - 2, 0))

    def __call__(self, x: float) -> float:
        """Evaluate the function at ``x`` (must lie in the domain)."""
        if len(self._xs) == 1:
            if abs(x - self._xs[0]) > XTOL:
                raise FunctionDomainError(
                    f"x={x} outside instant domain {{{self._xs[0]}}}"
                )
            return self._ys[0]
        i = self._locate(x)
        x0, x1 = self._xs[i], self._xs[i + 1]
        y0, y1 = self._ys[i], self._ys[i + 1]
        if x1 - x0 <= XTOL:
            return y0
        t = (x - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)

    def piece_at(self, x: float) -> LinearPiece:
        """The linear piece whose interval contains ``x``.

        At an interior breakpoint the piece to the *right* is returned, except
        at the domain's right endpoint where the last piece is returned.
        """
        if len(self._xs) == 1:
            return LinearPiece(self._xs[0], self._xs[0], 0.0, self._ys[0])
        i = self._locate(x)
        x0, x1 = self._xs[i], self._xs[i + 1]
        y0, y1 = self._ys[i], self._ys[i + 1]
        slope = 0.0 if x1 - x0 <= XTOL else (y1 - y0) / (x1 - x0)
        return LinearPiece(x0, x1, slope, y0 - slope * x0)

    def pieces(self) -> Iterator[LinearPiece]:
        """Iterate over the linear pieces left to right."""
        if len(self._xs) == 1:
            yield LinearPiece(self._xs[0], self._xs[0], 0.0, self._ys[0])
            return
        for i in range(len(self._xs) - 1):
            x0, x1 = self._xs[i], self._xs[i + 1]
            y0, y1 = self._ys[i], self._ys[i + 1]
            slope = 0.0 if x1 - x0 <= XTOL else (y1 - y0) / (x1 - x0)
            yield LinearPiece(x0, x1, slope, y0 - slope * x0)

    # ------------------------------------------------------------------
    # Extrema
    # ------------------------------------------------------------------
    def min_value(self) -> float:
        """Minimum of the function over its domain."""
        return min(self._ys)

    def max_value(self) -> float:
        """Maximum of the function over its domain."""
        return max(self._ys)

    def argmin_intervals(self, tol: float = YTOL) -> list[tuple[float, float]]:
        """Maximal sub-intervals on which the function attains its minimum.

        The paper reports optimal leaving *intervals* (e.g. "[7:00, 7:03]"),
        so the answer is a list of closed intervals, possibly degenerate.
        """
        m = self.min_value()
        intervals: list[tuple[float, float]] = []
        if len(self._xs) == 1:
            return [(self._xs[0], self._xs[0])]
        for piece in self.pieces():
            lo_val, hi_val = piece.y_start, piece.y_end
            seg: tuple[float, float] | None = None
            if lo_val <= m + tol and hi_val <= m + tol:
                seg = (piece.x_start, piece.x_end)
            elif lo_val <= m + tol:
                seg = (piece.x_start, piece.x_start)
            elif hi_val <= m + tol:
                seg = (piece.x_end, piece.x_end)
            if seg is None:
                continue
            if intervals and seg[0] <= intervals[-1][1] + XTOL:
                intervals[-1] = (intervals[-1][0], max(intervals[-1][1], seg[1]))
            else:
                intervals.append(seg)
        return intervals

    def argmin(self) -> float:
        """One abscissa at which the minimum is attained (leftmost)."""
        return self.argmin_intervals()[0][0]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _merged_xs(self, other: "PiecewiseLinearFunction") -> list[float]:
        """Union of breakpoint abscissae of two same-domain functions."""
        xs: list[float] = []
        i = j = 0
        a, b = self._xs, other._xs
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i] <= b[j]):
                x = a[i]
                i += 1
            else:
                x = b[j]
                j += 1
            if not xs or x > xs[-1] + XTOL:
                xs.append(x)
        return xs

    def _check_same_domain(self, other: "PiecewiseLinearFunction") -> None:
        if (
            abs(self.x_min - other.x_min) > 1e-6
            or abs(self.x_max - other.x_max) > 1e-6
        ):
            raise FunctionDomainError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )

    def __add__(self, other: "PiecewiseLinearFunction | float") -> "PiecewiseLinearFunction":
        if isinstance(other, (int, float)):
            return PiecewiseLinearFunction._trusted(
                self._xs, tuple(y + other for y in self._ys)
            )
        self._check_same_domain(other)
        if kernel.KERNEL_ENABLED:
            xs, ys = kernel.merge_add(self._xs, self._ys, other._xs, other._ys)
            return PiecewiseLinearFunction._trusted(tuple(xs), tuple(ys))
        return self._add_legacy(other)

    def _add_legacy(self, other: "PiecewiseLinearFunction") -> "PiecewiseLinearFunction":
        xs = self._merged_xs(other)
        xs[0] = max(xs[0], self.x_min, other.x_min)
        xs[-1] = min(xs[-1], self.x_max, other.x_max)
        return PiecewiseLinearFunction(
            [(x, self(min(max(x, self.x_min), self.x_max))
              + other(min(max(x, other.x_min), other.x_max))) for x in xs]
        )

    __radd__ = __add__

    def __sub__(self, other: "PiecewiseLinearFunction | float") -> "PiecewiseLinearFunction":
        if isinstance(other, (int, float)):
            return self + (-other)
        return self + other.scale(-1.0)

    def scale(self, factor: float) -> "PiecewiseLinearFunction":
        """Pointwise multiplication by a scalar."""
        return PiecewiseLinearFunction._trusted(
            self._xs, tuple(y * factor for y in self._ys)
        )

    def shift_x(self, dx: float) -> "PiecewiseLinearFunction":
        """Translate the domain: ``g(x) = f(x - dx)``."""
        return PiecewiseLinearFunction._trusted(
            tuple(x + dx for x in self._xs), self._ys
        )

    def minus_identity(self) -> "PiecewiseLinearFunction":
        """Return ``f(x) - x`` — converts an arrival function to travel time."""
        return PiecewiseLinearFunction._trusted(
            self._xs, tuple(y - x for x, y in zip(self._xs, self._ys))
        )

    def plus_identity(self) -> "PiecewiseLinearFunction":
        """Return ``f(x) + x`` — converts travel time to an arrival function."""
        return PiecewiseLinearFunction._trusted(
            self._xs, tuple(y + x for x, y in zip(self._xs, self._ys))
        )

    # ------------------------------------------------------------------
    # Restriction / simplification / comparison
    # ------------------------------------------------------------------
    def restrict(self, lo: float, hi: float) -> "PiecewiseLinearFunction":
        """Restrict to ``[lo, hi]`` (must be contained in the domain)."""
        if lo < self.x_min - 1e-6 or hi > self.x_max + 1e-6:
            raise FunctionDomainError(
                f"[{lo}, {hi}] not contained in domain {self.domain}"
            )
        lo = max(lo, self.x_min)
        hi = min(hi, self.x_max)
        if hi < lo - XTOL:
            raise FunctionDomainError(f"empty restriction [{lo}, {hi}]")
        if kernel.KERNEL_ENABLED:
            xs, ys = kernel.restrict(self._xs, self._ys, lo, hi)
            return PiecewiseLinearFunction._trusted(tuple(xs), tuple(ys))
        if hi - lo <= XTOL:
            return PiecewiseLinearFunction([(lo, self(lo))])
        pts: list[tuple[float, float]] = [(lo, self(lo))]
        for x, y in self.breakpoints:
            if lo + XTOL < x < hi - XTOL:
                pts.append((x, y))
        pts.append((hi, self(hi)))
        return PiecewiseLinearFunction(pts)

    def simplify(self, tol: float = YTOL) -> "PiecewiseLinearFunction":
        """Drop interior breakpoints that lie on the line through their neighbours."""
        if len(self._xs) <= 2:
            return self
        if kernel.KERNEL_ENABLED:
            xs, ys = kernel.simplify(self._xs, self._ys, tol)
            return PiecewiseLinearFunction._trusted(tuple(xs), tuple(ys))
        pts: list[tuple[float, float]] = [(self._xs[0], self._ys[0])]
        for i in range(1, len(self._xs) - 1):
            x0, y0 = pts[-1]
            x1, y1 = self._xs[i], self._ys[i]
            x2, y2 = self._xs[i + 1], self._ys[i + 1]
            # Interpolate (x1) on the chord (x0,y0)-(x2,y2).
            if x2 - x0 <= XTOL:
                continue
            t = (x1 - x0) / (x2 - x0)
            y_chord = y0 + t * (y2 - y0)
            if abs(y_chord - y1) > tol:
                pts.append((x1, y1))
        pts.append((self._xs[-1], self._ys[-1]))
        return PiecewiseLinearFunction(pts)

    def equals_approx(
        self, other: "PiecewiseLinearFunction", tol: float = 1e-6
    ) -> bool:
        """Pointwise approximate equality on a shared domain."""
        if (
            abs(self.x_min - other.x_min) > tol
            or abs(self.x_max - other.x_max) > tol
        ):
            return False
        xs = self._merged_xs(other)
        for x in xs:
            x_clamped = min(max(x, self.x_min, other.x_min), self.x_max, other.x_max)
            if abs(self(x_clamped) - other(x_clamped)) > tol:
                return False
        return True

    def dominates(self, other: "PiecewiseLinearFunction", tol: float = YTOL) -> bool:
        """True when ``self(x) <= other(x) + tol`` for every x in the shared domain.

        Used for the label-dominance pruning described in DESIGN.md.
        """
        self._check_same_domain(other)
        if kernel.KERNEL_ENABLED:
            return kernel.le_everywhere(
                self._xs, self._ys, other._xs, other._ys, tol
            )
        for x in self._merged_xs(other):
            x_c = min(max(x, self.x_min, other.x_min), self.x_max, other.x_max)
            if self(x_c) > other(x_c) + tol:
                return False
        return True


def pointwise_minimum(
    a: PiecewiseLinearFunction, b: PiecewiseLinearFunction
) -> PiecewiseLinearFunction:
    """The pointwise minimum ``min(a, b)`` of two same-domain functions.

    Crossing points become breakpoints of the result.  The minimum of two
    nondecreasing functions is nondecreasing, so profile search can wrap
    the result back into a monotone function.
    """
    a._check_same_domain(b)
    if kernel.KERNEL_ENABLED:
        xs, ys = kernel.merge_min(a._xs, a._ys, b._xs, b._ys)
        return PiecewiseLinearFunction._trusted(tuple(xs), tuple(ys))
    xs = a._merged_xs(b)

    def val(fn: PiecewiseLinearFunction, x: float) -> float:
        return fn(min(max(x, fn.x_min), fn.x_max))

    points: list[tuple[float, float]] = []
    for x0, x1 in zip(xs, xs[1:]):
        d0 = val(a, x0) - val(b, x0)
        d1 = val(a, x1) - val(b, x1)
        points.append((x0, min(val(a, x0), val(b, x0))))
        if (d0 > YTOL and d1 < -YTOL) or (d0 < -YTOL and d1 > YTOL):
            # One crossing strictly inside the elementary interval.
            pa = a.piece_at(min(max(0.5 * (x0 + x1), a.x_min), a.x_max))
            pb = b.piece_at(min(max(0.5 * (x0 + x1), b.x_min), b.x_max))
            denom = pa.slope - pb.slope
            if abs(denom) > 1e-15:
                x_cross = (pb.intercept - pa.intercept) / denom
                if x0 + XTOL < x_cross < x1 - XTOL:
                    points.append((x_cross, pa.value_at(x_cross)))
    last = xs[-1]
    points.append((last, min(val(a, last), val(b, last))))
    return PiecewiseLinearFunction(points)
