"""Annotated lower envelope — the paper's *lower border function* (§4.6).

As paths reaching the destination are popped from the priority queue, their
travel-time functions are folded into a running pointwise minimum.  Each
linear piece of the envelope remembers *which* path produced it, so the final
envelope directly yields the allFP answer: a partition of the query interval
into sub-intervals, each labelled with its fastest path.

Internally the envelope is stored kernel-style: a flat boundary array plus
per-piece slope/intercept/tag arrays, so each fold is one fused merge sweep
(:func:`repro.func.kernel.envelope_fold`) instead of a rebuild that rescans
every piece per elementary interval.  :class:`EnvelopePiece` objects are
materialised lazily for callers that want the piece view.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..exceptions import FunctionDomainError
from . import kernel
from .piecewise import XTOL, YTOL, LinearPiece, PiecewiseLinearFunction


@dataclass(frozen=True)
class EnvelopePiece:
    """One linear piece of the envelope, annotated with its producing tag."""

    x_start: float
    x_end: float
    slope: float
    intercept: float
    tag: Hashable

    def value_at(self, x: float) -> float:
        return self.slope * x + self.intercept

    @property
    def y_start(self) -> float:
        return self.value_at(self.x_start)

    @property
    def y_end(self) -> float:
        return self.value_at(self.x_end)


class AnnotatedEnvelope:
    """Pointwise minimum of piecewise-linear functions with piece provenance.

    The envelope lives on a fixed closed domain ``[lo, hi]`` (the query's
    leaving-time interval ``I``).  Before any function is added it is
    *empty* — its value is +infinity everywhere, so
    :meth:`max_value` returns ``inf`` and the engine keeps searching.
    Every function added must span the whole domain.
    """

    __slots__ = (
        "_lo",
        "_hi",
        "_bx",
        "_slope",
        "_icept",
        "_tags",
        "_view",
        "_max_cache",
        "_min_cache",
    )

    def __init__(self, lo: float, hi: float) -> None:
        if hi < lo - XTOL:
            raise FunctionDomainError(f"empty envelope domain [{lo}, {hi}]")
        self._lo = float(lo)
        self._hi = float(hi)
        self._bx: list[float] = []  # piece boundaries, len = pieces + 1
        self._slope: list[float] = []
        self._icept: list[float] = []
        self._tags: list[Hashable] = []
        self._view: tuple[EnvelopePiece, ...] | None = None
        self._max_cache: float | None = None
        self._min_cache: float | None = None

    def _invalidate(self) -> None:
        self._view = None
        self._max_cache = None
        self._min_cache = None

    def _piece_index(self, x: float) -> int:
        """Index of the piece covering ``x`` (pieces tile the domain)."""
        i = bisect.bisect_left(self._bx, x - XTOL, 1) - 1
        return min(i, len(self._slope) - 1)

    # ------------------------------------------------------------------
    @property
    def domain(self) -> tuple[float, float]:
        return (self._lo, self._hi)

    @property
    def is_empty(self) -> bool:
        """True before the first function has been added."""
        return not self._slope

    def pieces(self) -> tuple[EnvelopePiece, ...]:
        """The envelope's linear pieces, left to right."""
        if self._view is None:
            self._view = tuple(
                EnvelopePiece(
                    self._bx[i],
                    self._bx[i + 1],
                    self._slope[i],
                    self._icept[i],
                    self._tags[i],
                )
                for i in range(len(self._slope))
            )
        return self._view

    def tags(self) -> list[Hashable]:
        """Distinct tags appearing on the envelope, in left-to-right order."""
        seen: list[Hashable] = []
        for tag in self._tags:
            if not seen or seen[-1] != tag:
                if tag not in seen:
                    seen.append(tag)
        return seen

    # ------------------------------------------------------------------
    def value_at(self, x: float) -> float:
        """Envelope value at ``x`` (``inf`` when empty)."""
        if x < self._lo - XTOL or x > self._hi + XTOL:
            raise FunctionDomainError(
                f"x={x} outside envelope domain [{self._lo}, {self._hi}]"
            )
        if not self._slope:
            return math.inf
        i = self._piece_index(x)
        return self._slope[i] * x + self._icept[i]

    def tag_at(self, x: float) -> Hashable:
        """Tag of the piece covering ``x`` (ties go to the earlier piece)."""
        if not self._slope:
            raise FunctionDomainError("envelope is empty")
        return self._tags[self._piece_index(x)]

    def max_value(self) -> float:
        """Maximum of the envelope over the domain (``inf`` when empty).

        This is the termination threshold of IntAllFastestPaths: once the
        cheapest queue entry exceeds it, no future path can improve any
        sub-interval of the answer.  Cached between mutations — the engine
        consults it on every pop.
        """
        if not self._slope:
            return math.inf
        if self._max_cache is None:
            bx, sl, ic = self._bx, self._slope, self._icept
            self._max_cache = max(
                max(sl[i] * bx[i] + ic[i], sl[i] * bx[i + 1] + ic[i])
                for i in range(len(sl))
            )
        return self._max_cache

    def min_value(self) -> float:
        """Minimum of the envelope over the domain (``inf`` when empty)."""
        if not self._slope:
            return math.inf
        if self._min_cache is None:
            bx, sl, ic = self._bx, self._slope, self._icept
            self._min_cache = min(
                min(sl[i] * bx[i] + ic[i], sl[i] * bx[i + 1] + ic[i])
                for i in range(len(sl))
            )
        return self._min_cache

    # ------------------------------------------------------------------
    def add(self, fn: PiecewiseLinearFunction, tag: Hashable) -> bool:
        """Fold ``fn`` into the envelope; return True when it improved anywhere.

        ``fn`` must span the envelope's full domain.  Ties (equal value) keep
        the incumbent piece, matching the paper's convention that the first
        identified fastest path owns its sub-interval.
        """
        if fn.x_min > self._lo + 1e-6 or fn.x_max < self._hi - 1e-6:
            raise FunctionDomainError(
                f"function domain {fn.domain} does not cover "
                f"envelope domain [{self._lo}, {self._hi}]"
            )
        if kernel.KERNEL_ENABLED:
            bx, slope, icept, tags, improved = kernel.envelope_fold(
                self._bx,
                self._slope,
                self._icept,
                self._tags,
                fn._xs,
                fn._ys,
                tag,
                self._lo,
                self._hi,
            )
            self._bx, self._slope, self._icept, self._tags = (
                bx,
                slope,
                icept,
                tags,
            )
        else:
            improved = self._add_legacy(fn, tag)
        self._invalidate()
        return improved

    # -- legacy rebuild (kept callable for the kernel A/B benchmarks) ---
    def _boundaries(self, fn: PiecewiseLinearFunction) -> list[float]:
        xs = {self._lo, self._hi}
        xs.update(self._bx)
        for x, _y in fn.breakpoints:
            if self._lo - XTOL <= x <= self._hi + XTOL:
                xs.add(min(max(x, self._lo), self._hi))
        ordered = sorted(xs)
        merged: list[float] = []
        for x in ordered:
            if not merged or x > merged[-1] + XTOL:
                merged.append(x)
        if len(merged) == 1:
            merged.append(merged[0])
        return merged

    def _line_of_env(self, x0: float, x1: float) -> LinearPiece | None:
        """Current envelope line covering the elementary interval [x0, x1]."""
        if not self._slope:
            return None
        mid = 0.5 * (x0 + x1)
        for piece in self.pieces():
            if mid <= piece.x_end + XTOL:
                return LinearPiece(x0, x1, piece.slope, piece.intercept)
        return LinearPiece(x0, x1, self._slope[-1], self._icept[-1])

    def _add_legacy(self, fn: PiecewiseLinearFunction, tag: Hashable) -> bool:
        boundaries = self._boundaries(fn)
        new_pieces: list[EnvelopePiece] = []
        improved = False

        def emit(x0: float, x1: float, line: LinearPiece, the_tag: Hashable) -> None:
            if x1 - x0 <= XTOL and new_pieces:
                return
            if (
                new_pieces
                and new_pieces[-1].tag == the_tag
                and abs(new_pieces[-1].slope - line.slope) <= 1e-9
                and abs(new_pieces[-1].intercept - line.intercept) <= 1e-6
            ):
                prev = new_pieces[-1]
                new_pieces[-1] = EnvelopePiece(
                    prev.x_start, x1, prev.slope, prev.intercept, the_tag
                )
                return
            new_pieces.append(
                EnvelopePiece(x0, x1, line.slope, line.intercept, the_tag)
            )

        for i in range(len(boundaries) - 1):
            x0, x1 = boundaries[i], boundaries[i + 1]
            mid = 0.5 * (x0 + x1)
            fn_piece = fn.piece_at(min(max(mid, fn.x_min), fn.x_max))
            env_piece = self._line_of_env(x0, x1)
            if env_piece is None:
                emit(x0, x1, fn_piece, tag)
                improved = True
                continue
            d0 = fn_piece.value_at(x0) - env_piece.value_at(x0)
            d1 = fn_piece.value_at(x1) - env_piece.value_at(x1)
            if d0 >= -YTOL and d1 >= -YTOL:
                emit(x0, x1, env_piece, self._tag_for_interval(x0, x1))
            elif d0 <= YTOL and d1 <= YTOL:
                # New function at or below incumbent: only claim the piece
                # when strictly better somewhere on it.
                if d0 < -YTOL or d1 < -YTOL:
                    emit(x0, x1, fn_piece, tag)
                    improved = True
                else:
                    emit(x0, x1, env_piece, self._tag_for_interval(x0, x1))
            else:
                denom = fn_piece.slope - env_piece.slope
                x_cross = (
                    (env_piece.intercept - fn_piece.intercept) / denom
                    if abs(denom) > 1e-15
                    else mid
                )
                x_cross = min(max(x_cross, x0), x1)
                env_tag = self._tag_for_interval(x0, x1)
                if d0 < 0:
                    emit(x0, x_cross, fn_piece, tag)
                    emit(x_cross, x1, env_piece, env_tag)
                else:
                    emit(x0, x_cross, env_piece, env_tag)
                    emit(x_cross, x1, fn_piece, tag)
                improved = True
        if len(boundaries) == 2 and boundaries[1] - boundaries[0] <= XTOL:
            # Degenerate single-instant domain.
            x = boundaries[0]
            new_val = fn(min(max(x, fn.x_min), fn.x_max))
            old_val = self.value_at(x)
            if new_val < old_val - YTOL:
                new_pieces = [EnvelopePiece(x, x, 0.0, new_val, tag)]
                improved = True
            elif not self._slope:
                new_pieces = [EnvelopePiece(x, x, 0.0, new_val, tag)]
                improved = True
            else:
                new_pieces = list(self.pieces())
        self._set_pieces(new_pieces)
        return improved

    def _set_pieces(self, pieces: Sequence[EnvelopePiece]) -> None:
        self._bx = (
            [pieces[0].x_start] + [p.x_end for p in pieces] if pieces else []
        )
        self._slope = [p.slope for p in pieces]
        self._icept = [p.intercept for p in pieces]
        self._tags = [p.tag for p in pieces]

    def _tag_for_interval(self, x0: float, x1: float) -> Hashable:
        mid = 0.5 * (x0 + x1)
        return self.tag_at(min(max(mid, self._lo), self._hi))

    # ------------------------------------------------------------------
    def as_function(self) -> PiecewiseLinearFunction:
        """The envelope as a plain piecewise-linear function."""
        if not self._slope:
            raise FunctionDomainError("envelope is empty")
        pts: list[tuple[float, float]] = []
        bx, sl, ic = self._bx, self._slope, self._icept
        for i in range(len(sl)):
            if not pts or bx[i] > pts[-1][0] + XTOL:
                pts.append((bx[i], sl[i] * bx[i] + ic[i]))
            pts.append((bx[i + 1], sl[i] * bx[i + 1] + ic[i]))
        return PiecewiseLinearFunction(pts)

    def partition(self) -> list[tuple[float, float, Hashable]]:
        """The allFP partition: maximal runs ``(start, end, tag)``.

        Adjacent pieces owned by the same tag are merged; zero-width runs are
        dropped (except for a degenerate single-instant domain).
        """
        if not self._slope:
            return []
        runs: list[tuple[float, float, Hashable]] = []
        for i, tag in enumerate(self._tags):
            if runs and runs[-1][2] == tag:
                runs[-1] = (runs[-1][0], self._bx[i + 1], tag)
            else:
                runs.append((self._bx[i], self._bx[i + 1], tag))
        if len(runs) > 1:
            kept = [r for r in runs if r[1] - r[0] > XTOL]
            if not kept:
                return [(self._bx[0], self._bx[-1], runs[0][2])]
            # Dropping a zero-width run (e.g. a degenerate first piece left
            # by a crossing within XTOL of the domain edge) must not leave
            # a gap: re-stitch so the runs tile [lo, hi] exactly.
            runs = []
            for _start, end, tag in kept:
                runs.append((runs[-1][1] if runs else self._bx[0], end, tag))
            last = runs[-1]
            runs[-1] = (last[0], self._bx[-1], last[2])
        return runs

    def merge_tags(self, pairs: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Rewrite tags (old -> new); used to canonicalise path labels."""
        mapping = dict(pairs)
        self._tags = [mapping.get(t, t) for t in self._tags]
        self._invalidate()
