"""Monotone piecewise-linear functions — arrival-time functions.

The paper expands a path ``s ⇒ n`` by an edge ``n → n_j`` by combining the
path's travel-time function with the edge's (§4.4).  Internally we phrase the
same operation as *composition of arrival functions*:

    ``A_path(l)`` = time one reaches ``n`` when leaving ``s`` at ``l``
    ``A_edge(t)`` = time one reaches ``n_j`` when leaving ``n`` at ``t``
    ``A_new = A_edge ∘ A_path``

The breakpoints the paper derives case-by-case (their Figure 5: the instants
where either input function changes line) are exactly the breakpoints of this
composition: the breakpoints of ``A_path`` plus the preimages under ``A_path``
of the breakpoints of ``A_edge``.  FIFO (proved for the flow-speed model in
[19]) means every arrival function is nondecreasing, which this class
enforces.
"""

from __future__ import annotations

from typing import Iterable

from ..exceptions import FunctionDomainError, NotMonotoneError
from . import kernel
from .piecewise import XTOL, PiecewiseLinearFunction

#: How much local decrease we forgive as floating-point noise.
_MONOTONE_TOL = 1e-7


class MonotonePiecewiseLinear(PiecewiseLinearFunction):
    """A continuous, nondecreasing piecewise-linear function.

    Raises :class:`~repro.exceptions.NotMonotoneError` when constructed from
    decreasing breakpoints.  In a FIFO network every arrival function is
    strictly increasing; tiny numerical decreases up to ``1e-7`` are snapped
    flat rather than rejected.
    """

    __slots__ = ()

    def __init__(self, points: Iterable[tuple[float, float]]) -> None:
        pts = list(points)
        fixed: list[tuple[float, float]] = []
        for x, y in pts:
            if fixed and y < fixed[-1][1]:
                if y < fixed[-1][1] - _MONOTONE_TOL:
                    raise NotMonotoneError(
                        f"arrival function decreases at x={x}: "
                        f"{fixed[-1][1]} -> {y}"
                    )
                y = fixed[-1][1]
            fixed.append((x, y))
        super().__init__(fixed)

    @classmethod
    def _trusted_monotone(
        cls, xs: list[float], ys: list[float]
    ) -> "MonotonePiecewiseLinear":
        """Wrap kernel output: snap float-noise decreases, skip revalidation.

        Kernel operators preserve the class invariants structurally (sorted
        deduped abscissae, finite values); only the monotone snap of the
        constructor still applies.
        """
        kernel.snap_monotone(ys, _MONOTONE_TOL)
        return cls._trusted(tuple(xs), tuple(ys))

    # ------------------------------------------------------------------
    @property
    def y_min(self) -> float:
        """Smallest value (attained at the left endpoint)."""
        return self._ys[0]

    @property
    def y_max(self) -> float:
        """Largest value (attained at the right endpoint)."""
        return self._ys[-1]

    @property
    def value_range(self) -> tuple[float, float]:
        """The closed range ``[f(x_min), f(x_max)]``."""
        return (self._ys[0], self._ys[-1])

    # ------------------------------------------------------------------
    def preimage_points(self, y: float) -> list[float]:
        """Abscissae where the function attains ``y``.

        For a nondecreasing function the preimage of a value is a (possibly
        empty, possibly degenerate) closed interval; both endpoints are
        returned.  Used to find the "trickier case" breakpoints of §4.4 —
        departure times at which a *downstream* function changes line.
        """
        if y < self._ys[0] - XTOL or y > self._ys[-1] + XTOL:
            return []
        ys = self._ys
        xs = self._xs
        result: list[float] = []
        # Leftmost crossing.
        for i in range(len(xs) - 1):
            if ys[i] <= y + XTOL and ys[i + 1] >= y - XTOL:
                if ys[i + 1] - ys[i] <= XTOL:
                    result.append(xs[i])
                else:
                    t = (y - ys[i]) / (ys[i + 1] - ys[i])
                    result.append(xs[i] + t * (xs[i + 1] - xs[i]))
                break
        else:
            if len(xs) == 1 and abs(ys[0] - y) <= XTOL:
                return [xs[0]]
            return []
        # Rightmost crossing.
        for i in range(len(xs) - 2, -1, -1):
            if ys[i] <= y + XTOL and ys[i + 1] >= y - XTOL:
                if ys[i + 1] - ys[i] <= XTOL:
                    right = xs[i + 1]
                else:
                    t = (y - ys[i]) / (ys[i + 1] - ys[i])
                    right = xs[i] + t * (xs[i + 1] - xs[i])
                if right > result[0] + XTOL:
                    result.append(right)
                break
        return result

    def inverse(self) -> "MonotonePiecewiseLinear":
        """The inverse function (requires strict increase).

        Arrival functions on networks with positive speeds are strictly
        increasing, so the inverse is well defined; a flat segment would make
        the inverse discontinuous and raises.
        """
        if kernel.KERNEL_ENABLED:
            xs, ys = kernel.inverse(self._xs, self._ys)
            return MonotonePiecewiseLinear._trusted_monotone(xs, ys)
        for i in range(len(self._xs) - 1):
            if self._ys[i + 1] - self._ys[i] <= XTOL and (
                self._xs[i + 1] - self._xs[i] > XTOL
            ):
                raise NotMonotoneError(
                    "cannot invert: function is flat on "
                    f"[{self._xs[i]}, {self._xs[i + 1]}]"
                )
        return MonotonePiecewiseLinear(list(zip(self._ys, self._xs)))

    def compose(self, inner: "MonotonePiecewiseLinear") -> "MonotonePiecewiseLinear":
        """Return ``self ∘ inner`` — the §4.4 path-expansion combine step.

        ``inner`` is the arrival function of the prefix path and ``self`` is
        the arrival function of the next edge; the result maps a leaving time
        at the path's source to the arrival time after traversing the edge.
        ``inner``'s range must be contained in ``self``'s domain.
        """
        lo, hi = inner.value_range
        if lo < self.x_min - 1e-6 or hi > self.x_max + 1e-6:
            raise FunctionDomainError(
                f"inner range [{lo}, {hi}] not within outer domain {self.domain}"
            )
        if kernel.KERNEL_ENABLED:
            xs, ys = kernel.compose(self._xs, self._ys, inner._xs, inner._ys)
            return MonotonePiecewiseLinear._trusted_monotone(xs, ys)
        xs = list(inner._xs)
        for by, _bx in zip(self._xs, self._ys):
            # by is a breakpoint abscissa of the outer function; find the
            # departure times at which the prefix path delivers us there.
            if by <= lo + XTOL or by >= hi - XTOL:
                continue
            xs.extend(inner.preimage_points(by))
        xs.sort()
        merged: list[float] = []
        for x in xs:
            if not merged or x > merged[-1] + XTOL:
                merged.append(x)
        pts = []
        for x in merged:
            mid = inner(x)
            mid = min(max(mid, self.x_min), self.x_max)
            pts.append((x, self(mid)))
        return MonotonePiecewiseLinear(pts)

    # ------------------------------------------------------------------
    # Overrides returning the monotone type where closure holds.
    # ------------------------------------------------------------------
    def restrict(self, lo: float, hi: float) -> "MonotonePiecewiseLinear":
        base = super().restrict(lo, hi)
        if kernel.KERNEL_ENABLED:
            return MonotonePiecewiseLinear._trusted_monotone(
                list(base._xs), list(base._ys)
            )
        return MonotonePiecewiseLinear(base.breakpoints)

    def simplify(self, tol: float = 1e-9) -> "MonotonePiecewiseLinear":
        base = super().simplify(tol)
        if kernel.KERNEL_ENABLED:
            # Simplify keeps a subset of already-monotone values.
            return MonotonePiecewiseLinear._trusted(base._xs, base._ys)
        return MonotonePiecewiseLinear(base.breakpoints)

    def shift_x(self, dx: float) -> "MonotonePiecewiseLinear":
        if kernel.KERNEL_ENABLED:
            return MonotonePiecewiseLinear._trusted(
                tuple(x + dx for x in self._xs), self._ys
            )
        return MonotonePiecewiseLinear(
            [(x + dx, y) for x, y in self.breakpoints]
        )


def identity(lo: float, hi: float) -> MonotonePiecewiseLinear:
    """The identity arrival function on ``[lo, hi]`` (zero-length path)."""
    if hi - lo <= XTOL:
        return MonotonePiecewiseLinear([(lo, lo)])
    return MonotonePiecewiseLinear([(lo, lo), (hi, hi)])
