"""Numpy-vectorized backend for the piecewise-linear function kernel.

Drop-in replacements for the hot operators of :mod:`repro.func.kernel`
(the "array" backend), selected via ``REPRO_FUNC_KERNEL=numpy`` or
:func:`repro.func.kernel.set_backend`.  Breakpoint sequences are converted
to contiguous float64 ndarrays once per call (the ``*_many`` batch entry
points amortize that conversion across a whole set), evaluation becomes a
``searchsorted`` plus fancy-indexed interpolation, and crossing/preimage
generation happens on whole arrays instead of per point.

Bitwise parity
--------------
Answers must be *identical* to the array backend, not merely close: the
engine caches and dominance tests compare function values with exact
tolerances, and the property suite asserts equality.  Every arithmetic
expression here therefore replicates the array kernel's operation order
exactly — e.g. interpolation is ``y0 + (x - x0) / dx * dy`` (never
``np.interp``, which associates differently), segment-window comparisons
reuse the precomputed ``y1 - XTOL`` form, and the XTOL dedupe falls back
to the same sequential keep-first scan whenever a vectorized fast path
cannot prove it would match.  IEEE 754 double arithmetic is deterministic,
so same ops on same floats give the same bits.

Sizing
------
Per-call ndarray setup costs a few microseconds, so at tiny breakpoint
counts (n ≲ 8) the array backend can still win; the vectorized sweeps pull
ahead as functions fatten (see ``benchmarks/bench_func_ops.py`` at sizes
8/32/128).  Batch pipelines should prefer :func:`compose_many` /
:func:`merge_min_many`, which keep intermediates as ndarrays.

This module must only be imported when numpy is importable;
:func:`repro.func.kernel.set_backend` guards that and falls back to the
array backend otherwise.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import NotMonotoneError
from . import kernel as _k
from .kernel import XTOL, YTOL


def _arr(seq: Sequence[float]) -> np.ndarray:
    return np.ascontiguousarray(seq, dtype=np.float64)


# ----------------------------------------------------------------------
# Shared vectorized helpers.
# ----------------------------------------------------------------------

def _eval_many(xs: np.ndarray, ys: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Clamped piecewise-linear evaluation of ``q`` (vector of abscissae).

    Mirrors the array kernel's forward-cursor evaluation branch for branch:
    clamp at both ends, return ``ys[i]`` on a degenerate segment, otherwise
    ``y0 + (x - x0) / dx * dy`` — the same association the sequential code
    uses, so results are bitwise identical.
    """
    n = xs.size
    if n == 1:
        return np.full(q.shape, ys[0])
    idx = np.clip(np.searchsorted(xs, q, side="right") - 1, 0, n - 2)
    x0 = xs[idx]
    dx = xs[idx + 1] - x0
    with np.errstate(divide="ignore", invalid="ignore"):
        interp = ys[idx] + (q - x0) / dx * (ys[idx + 1] - ys[idx])
    v = np.where(dx <= XTOL, ys[idx], interp)
    v = np.where(q >= xs[n - 1], ys[n - 1], v)
    return np.where(q <= xs[0], ys[0], v)


def _dedupe_union(values: np.ndarray) -> np.ndarray:
    """Keep-first XTOL dedupe of a *sorted* array of abscissae.

    Equivalent to the two-pointer union loops: keep the first value, then
    keep each subsequent value iff it exceeds the last kept one by more
    than XTOL.  Fast path when all gaps are wide; ``np.unique`` handles the
    common exact-duplicate case; the rare near-duplicate chain falls back
    to the sequential scan (prefix-dependent, so not vectorizable).
    """
    if values.size <= 1:
        return values
    if np.all(np.diff(values) > XTOL):
        return values
    uniq = np.unique(values)
    if uniq.size <= 1 or np.all(np.diff(uniq) > XTOL):
        return uniq
    out = [values[0]]
    last = float(values[0])
    for x in values[1:].tolist():
        if x > last + XTOL:
            out.append(x)
            last = x
    return np.asarray(out)


def _dedupe_pairs(
    xs: np.ndarray, ys: np.ndarray
) -> tuple[list[float], list[float]]:
    """Keep-first XTOL dedupe of an ``(xs, ys)`` candidate stream → lists."""
    if xs.size <= 1 or np.all(np.diff(xs) > XTOL):
        return xs.tolist(), ys.tolist()
    cx = xs.tolist()
    cy = ys.tolist()
    out_x = [cx[0]]
    out_y = [cy[0]]
    for x, y in zip(cx[1:], cy[1:]):
        if x > out_x[-1] + XTOL:
            out_x.append(x)
            out_y.append(y)
    return out_x, out_y


# ----------------------------------------------------------------------
# Fused binary operators.
# ----------------------------------------------------------------------

def merge_add(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Vectorized pointwise sum (see array ``merge_add``)."""
    a_x, a_y, b_x, b_y = _arr(axs), _arr(ays), _arr(bxs), _arr(bys)
    na, nb = a_x.size, b_x.size
    x_lo = a_x[0] if a_x[0] >= b_x[0] else b_x[0]
    x_hi = a_x[na - 1] if a_x[na - 1] <= b_x[nb - 1] else b_x[nb - 1]
    if x_hi - x_lo <= XTOL:
        xl = float(x_lo)
        return [xl], [_k.eval_at(axs, ays, xl) + _k.eval_at(bxs, bys, xl)]
    _k._guard_size(na + nb, "merge_add")
    u = _dedupe_union(np.sort(np.clip(np.concatenate((a_x, b_x)), x_lo, x_hi)))
    va = _eval_many(a_x, a_y, u)
    vb = _eval_many(b_x, b_y, u)
    xs = u.tolist()
    ys = (va + vb).tolist()
    if xs[-1] < x_hi - XTOL:
        xh = float(x_hi)
        xs.append(xh)
        ys.append(_k.eval_at(axs, ays, xh) + _k.eval_at(bxs, bys, xh))
    _k.COUNTERS.breakpoints_allocated += len(xs)
    return xs, ys


def _merge_min_arrays(
    a_x: np.ndarray, a_y: np.ndarray, b_x: np.ndarray, b_y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    na, nb = a_x.size, b_x.size
    _k._guard_size(2 * (na + nb), "merge_min")
    u = _dedupe_union(np.sort(np.concatenate((a_x, b_x))))
    va = _eval_many(a_x, a_y, u)
    vb = _eval_many(b_x, b_y, u)
    m = np.where(va <= vb, va, vb)
    if u.size > 1:
        d = va - vb
        d0, d1 = d[:-1], d[1:]
        ks = np.nonzero(
            ((d0 > YTOL) & (d1 < -YTOL)) | ((d0 < -YTOL) & (d1 > YTOL))
        )[0]
    else:
        ks = np.empty(0, dtype=np.intp)
    if ks.size:
        x0 = u[ks]
        x1 = u[ks + 1]
        t = d[ks] / (d[ks] - d[ks + 1])
        x_cross = x0 + t * (x1 - x0)
        ok = (x0 + XTOL < x_cross) & (x_cross < x1 - XTOL)
        ks, t, x_cross = ks[ok], t[ok], x_cross[ok]
    if ks.size:
        y_cross = va[ks] + t * (va[ks + 1] - va[ks])
        xs = np.insert(u, ks + 1, x_cross)
        ys = np.insert(m, ks + 1, y_cross)
    else:
        xs, ys = u, m
    _k.COUNTERS.breakpoints_allocated += xs.size
    return xs, ys


def merge_min(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Vectorized pointwise minimum with crossings (see array ``merge_min``)."""
    xs, ys = _merge_min_arrays(_arr(axs), _arr(ays), _arr(bxs), _arr(bys))
    return xs.tolist(), ys.tolist()


def lt_somewhere(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
    tol: float,
) -> bool:
    """True when ``a(x) < b(x) - tol`` at some union abscissa."""
    a_x, a_y, b_x, b_y = _arr(axs), _arr(ays), _arr(bxs), _arr(bys)
    u = _dedupe_union(np.sort(np.concatenate((a_x, b_x))))
    va = _eval_many(a_x, a_y, u)
    vb = _eval_many(b_x, b_y, u)
    return bool(np.any(va < vb - tol))


def le_everywhere(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
    tol: float,
) -> bool:
    """``a(x) <= b(x) + tol`` everywhere — the dominance test."""
    return not lt_somewhere(bxs, bys, axs, ays, tol)


# ----------------------------------------------------------------------
# Monotone operators: composition and inverse.
# ----------------------------------------------------------------------

def _compose_arrays(
    o_x: np.ndarray, o_y: np.ndarray, i_x: np.ndarray, i_y: np.ndarray
) -> tuple[list[float], list[float]]:
    ni, no = i_x.size, o_x.size
    _k._guard_size(ni + no, "compose")
    lo = i_y[0]
    hi = i_y[ni - 1]
    # Outer breakpoints eligible for preimage insertion, mirroring the
    # sequential cursor: skip values at/below lo + XTOL, stop at hi - XTOL.
    start = np.searchsorted(o_x, lo + XTOL, side="right")
    stop = np.searchsorted(o_x, hi - XTOL, side="left")
    bys = o_x[start:stop]
    cand_x, cand_v = i_x, i_y
    if bys.size and ni > 1:
        dy = i_y[1:] - i_y[:-1]
        nondeg = np.nonzero(dy > XTOL)[0]
        if nondeg.size:
            # Each eligible outer value is consumed by the first
            # non-degenerate inner segment whose top clears it: the same
            # ``oxs[op] < y1 - XTOL`` window the sequential cursor uses.
            z = i_y[nondeg + 1] - XTOL
            j = np.searchsorted(z, bys, side="right")
            valid = j < nondeg.size
            bys_v = bys[valid]
            seg = nondeg[j[valid]]
            y0 = i_y[seg]
            y1 = i_y[seg + 1]
            emit = bys_v > y0 + XTOL
            if np.any(emit):
                bys_e = bys_v[emit]
                seg_e = seg[emit]
                t = (bys_e - y0[emit]) / (y1[emit] - y0[emit])
                x_at = i_x[seg_e]
                xq = x_at + t * (i_x[seg_e + 1] - x_at)
                cand_x = np.insert(i_x, seg_e + 1, xq)
                cand_v = np.insert(i_y, seg_e + 1, bys_e)
    cand_y = _eval_many(o_x, o_y, cand_v)
    out_x, out_y = _dedupe_pairs(cand_x, cand_y)
    _k.COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


def compose(
    oxs: Sequence[float],
    oys: Sequence[float],
    ixs: Sequence[float],
    iys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Vectorized ``outer ∘ inner`` for nondecreasing functions."""
    return _compose_arrays(_arr(oxs), _arr(oys), _arr(ixs), _arr(iys))


def inverse(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[list[float], list[float]]:
    """Inverse of a strictly increasing function (axes swapped)."""
    x_, y_ = _arr(xs), _arr(ys)
    n = x_.size
    if n > 1:
        flat = (y_[1:] - y_[:-1] <= XTOL) & (x_[1:] - x_[:-1] > XTOL)
        if np.any(flat):
            i = int(np.argmax(flat))
            raise NotMonotoneError(
                f"cannot invert: function is flat on "
                f"[{float(x_[i])}, {float(x_[i + 1])}]"
            )
    out_x, out_y = _dedupe_pairs(y_, x_)
    _k.COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


# ----------------------------------------------------------------------
# Unary reshaping operators.
# ----------------------------------------------------------------------

def simplify(
    xs: Sequence[float], ys: Sequence[float], tol: float
) -> tuple[list[float], list[float]]:
    """Drop interior breakpoints within ``tol`` of the running chord."""
    n = len(xs)
    if n <= 2:
        return list(xs), list(ys)
    x_, y_ = _arr(xs), _arr(ys)
    # Fast path: test every interior point against the chord of its
    # immediate neighbours.  If all of them survive, the sequential
    # running-chord anchors coincide with those neighbours, so keeping
    # everything is exactly what the array backend would do.  Any drop
    # changes later anchors, so fall back to the sequential scan.
    x0, y0 = x_[:-2], y_[:-2]
    x2, y2 = x_[2:], y_[2:]
    span = x2 - x0
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (x_[1:-1] - x0) / span
        dev = np.abs(y0 + t * (y2 - y0) - y_[1:-1])
    if np.all((span > XTOL) & (dev > tol)):
        out_x, out_y = x_.tolist(), y_.tolist()
        _k.COUNTERS.breakpoints_allocated += len(out_x)
        return out_x, out_y
    return _k._ARRAY_IMPLS["simplify"](xs, ys, tol)


def restrict(
    xs: Sequence[float], ys: Sequence[float], lo: float, hi: float
) -> tuple[list[float], list[float]]:
    """Restrict to ``[lo, hi]`` (caller guarantees containment)."""
    if hi - lo <= XTOL:
        return [lo], [_k.eval_at(xs, ys, lo)]
    x_, y_ = _arr(xs), _arr(ys)
    sel = (x_ > lo + XTOL) & (x_ < hi - XTOL)
    out_x = [lo] + x_[sel].tolist() + [hi]
    out_y = (
        [_k.eval_at(xs, ys, lo)] + y_[sel].tolist() + [_k.eval_at(xs, ys, hi)]
    )
    _k.COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


# ----------------------------------------------------------------------
# Annotated lower envelope.
# ----------------------------------------------------------------------

def envelope_fold(
    bx: Sequence[float],
    slope: Sequence[float],
    icept: Sequence[float],
    tags: Sequence[Hashable],
    fxs: Sequence[float],
    fys: Sequence[float],
    new_tag: Hashable,
    lo: float,
    hi: float,
) -> tuple[list[float], list[float], list[float], list[Hashable], bool]:
    """Fold one function into an annotated envelope (see array version).

    The per-interval line selection (function segment, envelope piece,
    endpoint differences, crossing abscissa) is fully vectorized; only the
    final emit pass — which merges consecutive same-tag pieces and is
    inherently sequential — stays a Python loop over precomputed scalars.
    """
    _k.COUNTERS.envelope_merges += 1
    np_env = len(slope)
    nf = len(fxs)
    _k._guard_size(2 * (np_env + nf + 2), "envelope_fold")

    bx_, fxs_, fys_ = _arr(bx), _arr(fxs), _arr(fys)
    merged = np.concatenate((bx_, fxs_))
    merged = merged[(merged >= lo - XTOL) & (merged <= hi + XTOL)]
    bounds = _dedupe_union(np.sort(np.clip(merged, lo, hi))).tolist()
    if not bounds or bounds[0] > lo + XTOL:
        bounds.insert(0, lo)
    else:
        bounds[0] = lo
    if len(bounds) == 1:
        bounds.append(bounds[0])
    elif bounds[-1] < hi - XTOL:
        bounds.append(hi)
    else:
        bounds[-1] = hi

    if len(bounds) == 2 and bounds[1] - bounds[0] <= XTOL:
        # Degenerate single-instant domain.
        x = bounds[0]
        new_val = _k.eval_at(fxs, fys, x)
        if np_env == 0:
            return [x, x], [0.0], [new_val], [new_tag], True
        old_val = slope[0] * x + icept[0]
        if new_val < old_val - YTOL:
            return [x, x], [0.0], [new_val], [new_tag], True
        return list(bx), list(slope), list(icept), list(tags), False

    b = np.asarray(bounds)
    x0 = b[:-1]
    x1 = b[1:]
    mid = 0.5 * (x0 + x1)
    m = x0.size
    if nf == 1:
        f_sl = np.zeros(m)
        f_ic = np.full(m, fys_[0])
    else:
        fp = np.clip(np.searchsorted(fxs_, mid, side="right") - 1, 0, nf - 2)
        fdx = fxs_[fp + 1] - fxs_[fp]
        with np.errstate(divide="ignore", invalid="ignore"):
            f_sl = np.where(fdx <= XTOL, 0.0, (fys_[fp + 1] - fys_[fp]) / fdx)
        f_ic = fys_[fp] - f_sl * fxs_[fp]

    out_bx: list[float] = []
    out_slope: list[float] = []
    out_icept: list[float] = []
    out_tags: list[Hashable] = []
    improved = False

    def emit(px0: float, px1: float, sl: float, ic: float, tg: Hashable) -> None:
        if px1 - px0 <= XTOL and out_slope:
            return
        if (
            out_slope
            and out_tags[-1] == tg
            and abs(out_slope[-1] - sl) <= 1e-9
            and abs(out_icept[-1] - ic) <= 1e-6
        ):
            out_bx[-1] = px1
            return
        if not out_bx:
            out_bx.append(px0)
        out_bx.append(px1)
        out_slope.append(sl)
        out_icept.append(ic)
        out_tags.append(tg)

    x0l, x1l = x0.tolist(), x1.tolist()
    f_sll, f_icl = f_sl.tolist(), f_ic.tolist()
    if np_env == 0:
        for i in range(m):
            emit(x0l[i], x1l[i], f_sll[i], f_icl[i], new_tag)
        improved = True
    else:
        sl_arr = np.asarray(slope, dtype=np.float64)
        ic_arr = np.asarray(icept, dtype=np.float64)
        ep = np.clip(
            np.searchsorted(bx_, mid, side="right") - 1, 0, np_env - 1
        )
        e_sl = sl_arr[ep]
        e_ic = ic_arr[ep]
        d0 = (f_sl * x0 + f_ic) - (e_sl * x0 + e_ic)
        d1 = (f_sl * x1 + f_ic) - (e_sl * x1 + e_ic)
        denom = f_sl - e_sl
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = np.where(
                np.abs(denom) > 1e-15, (e_ic - f_ic) / denom, mid
            )
        x_cross = np.minimum(np.maximum(x_cross, x0), x1)
        e_sll, e_icl = e_sl.tolist(), e_ic.tolist()
        d0l, d1l, xcl = d0.tolist(), d1.tolist(), x_cross.tolist()
        epl = ep.tolist()
        for i in range(m):
            dd0, dd1 = d0l[i], d1l[i]
            if dd0 >= -YTOL and dd1 >= -YTOL:
                emit(x0l[i], x1l[i], e_sll[i], e_icl[i], tags[epl[i]])
            elif dd0 <= YTOL and dd1 <= YTOL:
                # At or below the incumbent: only claim when strictly
                # better somewhere on the interval.
                if dd0 < -YTOL or dd1 < -YTOL:
                    emit(x0l[i], x1l[i], f_sll[i], f_icl[i], new_tag)
                    improved = True
                else:
                    emit(x0l[i], x1l[i], e_sll[i], e_icl[i], tags[epl[i]])
            else:
                xc = xcl[i]
                if dd0 < 0:
                    emit(x0l[i], xc, f_sll[i], f_icl[i], new_tag)
                    emit(xc, x1l[i], e_sll[i], e_icl[i], tags[epl[i]])
                else:
                    emit(x0l[i], xc, e_sll[i], e_icl[i], tags[epl[i]])
                    emit(xc, x1l[i], f_sll[i], f_icl[i], new_tag)
                improved = True
    _k.COUNTERS.breakpoints_allocated += len(out_bx)
    return out_bx, out_slope, out_icept, out_tags, improved


# ----------------------------------------------------------------------
# Batched entry points: amortize ndarray setup across a function set.
# ----------------------------------------------------------------------

def compose_many(
    oxs: Sequence[float],
    oys: Sequence[float],
    inners: Iterable[tuple[Sequence[float], Sequence[float]]],
) -> list[tuple[list[float], list[float]]]:
    """Compose one outer function with many inners (ragged sizes fine).

    The outer function is converted to ndarrays once for the whole batch.
    """
    o_x, o_y = _arr(oxs), _arr(oys)
    return [
        _compose_arrays(o_x, o_y, _arr(ixs), _arr(iys)) for ixs, iys in inners
    ]


def merge_min_many(
    functions: Iterable[tuple[Sequence[float], Sequence[float]]],
) -> tuple[list[float], list[float]]:
    """Left-fold pointwise minimum over a stacked function set.

    Matches the array backend's sequential fold exactly (same crossing
    insertions in the same order) while keeping the running minimum as
    ndarrays between folds.
    """
    it = iter(functions)
    try:
        fxs, fys = next(it)
    except StopIteration:
        raise ValueError("merge_min_many requires at least one function")
    xs, ys = _arr(fxs), _arr(fys)
    for gxs, gys in it:
        xs, ys = _merge_min_arrays(xs, ys, _arr(gxs), _arr(gys))
    return xs.tolist(), ys.tolist()
