"""Piecewise-linear function algebra (system S1 in DESIGN.md).

The paper's continuous-time machinery rests on three operations over
piecewise-linear (PL) functions of the leaving time:

* evaluating / adding / restricting PL functions
  (:class:`~repro.func.piecewise.PiecewiseLinearFunction`),
* composing monotone PL *arrival* functions — the paper's §4.4 path-expansion
  combine step (:class:`~repro.func.monotone.MonotonePiecewiseLinear`),
* maintaining the annotated lower envelope of travel-time functions — the
  paper's §4.6 *lower border function*
  (:class:`~repro.func.envelope.AnnotatedEnvelope`).
"""

from .piecewise import PiecewiseLinearFunction, LinearPiece
from .monotone import MonotonePiecewiseLinear, identity
from .envelope import AnnotatedEnvelope, EnvelopePiece

__all__ = [
    "PiecewiseLinearFunction",
    "LinearPiece",
    "MonotonePiecewiseLinear",
    "identity",
    "AnnotatedEnvelope",
    "EnvelopePiece",
]
