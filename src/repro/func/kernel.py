"""Flat-array kernel for piecewise-linear function arithmetic.

Every inner-loop operation of IntAllFastestPaths — edge-function composition,
ranking-function addition, lower-envelope/border maintenance — reduces to a
handful of primitives over breakpoint sequences.  The legacy implementations
in :mod:`repro.func.piecewise` / :mod:`repro.func.monotone` /
:mod:`repro.func.envelope` re-evaluate one input per output breakpoint with a
bisect each (``O(n log n)`` per op, plus a fresh object per intermediate).
This module provides **fused single-pass merge-sweep** implementations that
walk both inputs once with two pointers (``O(n + m)``), allocate exactly one
output array pair, and never build intermediate function objects.

Representation
--------------
A function is two parallel sequences ``xs`` / ``ys`` (any indexable float
sequence; the classes store tuples, the kernel returns plain lists).  The
invariants are the same as :class:`~repro.func.piecewise.PiecewiseLinearFunction`:
``xs`` strictly increasing beyond :data:`~repro.func.piecewise.XTOL`, linear
interpolation between breakpoints, closed domain ``[xs[0], xs[-1]]``.

The classes remain the public API — they are thin views over this kernel.
Set :envvar:`REPRO_FUNC_KERNEL` to ``0`` (or call :func:`set_kernel_enabled`)
to route the classes through the legacy implementations instead; the A/B is
what ``benchmarks/bench_kernel.py`` measures.

Backends
--------
The kernel itself has two interchangeable implementations:

``array`` (default)
    The pure-Python merge sweeps defined in this module.
``numpy``
    The vectorized twins in :mod:`repro.func.kernel_np`, producing
    *identical* answers (same breakpoints, bit for bit).  Selected with
    ``REPRO_FUNC_KERNEL=numpy`` or :func:`set_backend`.  numpy is an
    optional dependency: when it cannot be imported the request falls back
    to ``array`` with a one-line stderr note.

Dispatch is by module-global rebinding: every call site already looks the
operator up as ``kernel.<op>(...)``, so :func:`set_backend` just swaps the
function objects.  :func:`active_backend` reports the name recorded in
:class:`~repro.core.results.SearchStats` (``legacy`` when the kernel is
disabled entirely).

Guard rails
-----------
Operations that would produce more than :func:`get_max_breakpoints`
breakpoints raise :class:`~repro.exceptions.FunctionShapeError` instead of
silently degrading into an ever-fatter function (configurable via
:func:`set_max_breakpoints` or :envvar:`REPRO_MAX_BREAKPOINTS`).

Counters
--------
:data:`COUNTERS` tallies kernel work (breakpoints allocated, envelope merges)
so :class:`~repro.core.results.SearchStats` can report per-query totals.
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_left, bisect_right
from typing import Hashable, Iterable, Sequence

from ..exceptions import FunctionShapeError, NotMonotoneError

#: Tolerance for comparing abscissae; kept numerically identical to
#: :data:`repro.func.piecewise.XTOL` (duplicated to avoid a circular import).
XTOL = 1e-9
#: Tolerance for comparing ordinates.
YTOL = 1e-9

# ----------------------------------------------------------------------
# Configuration: kernel on/off switch and breakpoint-count guard.
# ----------------------------------------------------------------------

#: Raw REPRO_FUNC_KERNEL value: ``0``/``legacy`` disable the kernel,
#: ``numpy``/``np`` request the vectorized backend, anything else (default
#: ``1``) selects the array backend.
_RAW_KERNEL_ENV = os.environ.get("REPRO_FUNC_KERNEL", "1").strip().lower()

#: When False, the function classes fall back to the legacy per-point
#: implementations.  Benchmarks toggle this for the A/B comparison.
KERNEL_ENABLED = _RAW_KERNEL_ENV not in ("0", "legacy")

#: Default ceiling on the breakpoint count of any kernel-produced function.
DEFAULT_MAX_BREAKPOINTS = 100_000

def _max_breakpoints_from_env() -> int:
    raw = os.environ.get("REPRO_MAX_BREAKPOINTS")
    if raw is None:
        return DEFAULT_MAX_BREAKPOINTS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_BREAKPOINTS={raw!r} is not an integer"
        ) from None
    if value < 2:
        raise ValueError(
            f"REPRO_MAX_BREAKPOINTS={value} must be at least 2"
        )
    return value


_max_breakpoints = _max_breakpoints_from_env()


def set_kernel_enabled(flag: bool) -> bool:
    """Enable/disable the kernel globally; returns the previous setting."""
    global KERNEL_ENABLED
    previous = KERNEL_ENABLED
    KERNEL_ENABLED = bool(flag)
    return previous


def get_max_breakpoints() -> int:
    """The current ceiling on per-function breakpoint counts."""
    return _max_breakpoints


def set_max_breakpoints(limit: int) -> int:
    """Set the breakpoint ceiling; returns the previous value."""
    global _max_breakpoints
    if limit < 2:
        raise ValueError(f"MAX_BREAKPOINTS must be >= 2, got {limit}")
    previous = _max_breakpoints
    _max_breakpoints = int(limit)
    return previous


def _guard_size(n: int, op: str) -> None:
    if n > _max_breakpoints:
        raise FunctionShapeError(
            f"{op} would produce {n} breakpoints, exceeding the "
            f"MAX_BREAKPOINTS guard ({_max_breakpoints}); simplify inputs or "
            f"raise the limit via repro.func.kernel.set_max_breakpoints"
        )


class KernelCounters:
    """Running totals of kernel work, snapshot-able per query."""

    __slots__ = ("breakpoints_allocated", "envelope_merges")

    def __init__(self) -> None:
        self.breakpoints_allocated = 0
        self.envelope_merges = 0

    def snapshot(self) -> tuple[int, int]:
        return (self.breakpoints_allocated, self.envelope_merges)

    def delta(self, snap: tuple[int, int]) -> tuple[int, int]:
        return (
            self.breakpoints_allocated - snap[0],
            self.envelope_merges - snap[1],
        )


#: Global counters; the engine snapshots them around each query.
COUNTERS = KernelCounters()


# ----------------------------------------------------------------------
# Scalar helpers (no fusion needed, but kept here so every array-producing
# path shares the size guard and allocation counter).
# ----------------------------------------------------------------------

def eval_at(xs: Sequence[float], ys: Sequence[float], x: float) -> float:
    """Evaluate at ``x``, clamping outside the domain (no error)."""
    n = len(xs)
    if x <= xs[0]:
        return ys[0]
    if x >= xs[n - 1]:
        return ys[n - 1]
    lo, hi = 0, n - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if xs[mid] <= x:
            lo = mid
        else:
            hi = mid
    x0, x1 = xs[lo], xs[hi]
    if x1 - x0 <= XTOL:
        return ys[lo]
    t = (x - x0) / (x1 - x0)
    return ys[lo] + t * (ys[hi] - ys[lo])


def min_travel(xs: Sequence[float], ys: Sequence[float]) -> float:
    """``min(A(l) - l)`` over the breakpoints of an arrival function.

    The lazy ranking evaluation: for a piecewise-linear arrival function the
    travel-time function shares its breakpoints, so the minimum over them is
    exact — no intermediate travel-time object needed.
    """
    best = ys[0] - xs[0]
    for i in range(1, len(xs)):
        v = ys[i] - xs[i]
        if v < best:
            best = v
    return best


def snap_monotone(ys: list[float], tol: float) -> list[float]:
    """Snap decreases up to ``tol`` flat in place; raise beyond ``tol``."""
    prev = ys[0]
    for i in range(1, len(ys)):
        y = ys[i]
        if y < prev:
            if y < prev - tol:
                raise NotMonotoneError(
                    f"arrival function decreases at index {i}: {prev} -> {y}"
                )
            ys[i] = prev
        else:
            prev = y
    return ys


# ----------------------------------------------------------------------
# Fused binary operators.
# ----------------------------------------------------------------------

def merge_add(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Pointwise sum of two same-domain functions in one merge sweep.

    The output abscissae are the union of the inputs' (deduped within
    :data:`XTOL`), clamped to the intersection of the two domains; values are
    interpolated incrementally while merging — no per-point bisect.
    """
    na, nb = len(axs), len(bxs)
    x_lo = axs[0] if axs[0] >= bxs[0] else bxs[0]
    x_hi = axs[na - 1] if axs[na - 1] <= bxs[nb - 1] else bxs[nb - 1]
    if x_hi - x_lo <= XTOL:
        return [x_lo], [eval_at(axs, ays, x_lo) + eval_at(bxs, bys, x_lo)]
    _guard_size(na + nb, "merge_add")
    xs: list[float] = []
    ys: list[float] = []
    ia = ib = 0  # merge cursors
    sa = sb = 0  # interpolation segment cursors
    while ia < na or ib < nb:
        if ib >= nb or (ia < na and axs[ia] <= bxs[ib]):
            x = axs[ia]
            ia += 1
        else:
            x = bxs[ib]
            ib += 1
        if x < x_lo:
            x = x_lo
        elif x > x_hi:
            x = x_hi
        if xs and x <= xs[-1] + XTOL:
            continue
        while sa < na - 1 and axs[sa + 1] <= x:
            sa += 1
        if sa >= na - 1 or x <= axs[sa]:
            va = ays[sa]
        else:
            dx = axs[sa + 1] - axs[sa]
            va = (
                ays[sa]
                if dx <= XTOL
                else ays[sa] + (x - axs[sa]) / dx * (ays[sa + 1] - ays[sa])
            )
        while sb < nb - 1 and bxs[sb + 1] <= x:
            sb += 1
        if sb >= nb - 1 or x <= bxs[sb]:
            vb = bys[sb]
        else:
            dx = bxs[sb + 1] - bxs[sb]
            vb = (
                bys[sb]
                if dx <= XTOL
                else bys[sb] + (x - bxs[sb]) / dx * (bys[sb + 1] - bys[sb])
            )
        xs.append(x)
        ys.append(va + vb)
    if xs[-1] < x_hi - XTOL:
        xs.append(x_hi)
        ys.append(eval_at(axs, ays, x_hi) + eval_at(bxs, bys, x_hi))
    COUNTERS.breakpoints_allocated += len(xs)
    return xs, ys


def merge_min(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Pointwise minimum with crossing breakpoints, in one merge sweep.

    Same semantics as :func:`repro.func.piecewise.pointwise_minimum`: the
    result's abscissae are the deduped union of the inputs' plus every strict
    sign change of ``a - b`` inside an elementary interval.
    """
    na, nb = len(axs), len(bxs)
    _guard_size(2 * (na + nb), "merge_min")
    # Deduped union of abscissae (evaluation clamps, matching legacy).
    union: list[float] = []
    ia = ib = 0
    while ia < na or ib < nb:
        if ib >= nb or (ia < na and axs[ia] <= bxs[ib]):
            x = axs[ia]
            ia += 1
        else:
            x = bxs[ib]
            ib += 1
        if not union or x > union[-1] + XTOL:
            union.append(x)
    xs: list[float] = []
    ys: list[float] = []
    sa = sb = 0
    va0 = vb0 = 0.0
    for k, x in enumerate(union):
        while sa < na - 1 and axs[sa + 1] <= x:
            sa += 1
        if x <= axs[0]:
            va = ays[0]
        elif sa >= na - 1:
            va = ays[na - 1]
        else:
            dx = axs[sa + 1] - axs[sa]
            va = (
                ays[sa]
                if dx <= XTOL
                else ays[sa] + (x - axs[sa]) / dx * (ays[sa + 1] - ays[sa])
            )
        while sb < nb - 1 and bxs[sb + 1] <= x:
            sb += 1
        if x <= bxs[0]:
            vb = bys[0]
        elif sb >= nb - 1:
            vb = bys[nb - 1]
        else:
            dx = bxs[sb + 1] - bxs[sb]
            vb = (
                bys[sb]
                if dx <= XTOL
                else bys[sb] + (x - bxs[sb]) / dx * (bys[sb + 1] - bys[sb])
            )
        if k > 0:
            d0 = va0 - vb0
            d1 = va - vb
            if (d0 > YTOL and d1 < -YTOL) or (d0 < -YTOL and d1 > YTOL):
                x0 = xs[-1]
                t = d0 / (d0 - d1)
                x_cross = x0 + t * (x - x0)
                if x0 + XTOL < x_cross < x - XTOL:
                    y_cross = va0 + t * (va - va0)
                    xs.append(x_cross)
                    ys.append(y_cross)
        xs.append(x)
        ys.append(va if va <= vb else vb)
        va0, vb0 = va, vb
    COUNTERS.breakpoints_allocated += len(xs)
    return xs, ys


def le_everywhere(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
    tol: float,
) -> bool:
    """``a(x) <= b(x) + tol`` for every x — the dominance test, fused.

    Both functions are linear between union abscissae, so checking the union
    breakpoints is exact (matching the legacy ``dominates``).  The test fails
    exactly when ``b(x) < a(x) - tol`` somewhere.
    """
    return not lt_somewhere(bxs, bys, axs, ays, tol)


def lt_somewhere(
    axs: Sequence[float],
    ays: Sequence[float],
    bxs: Sequence[float],
    bys: Sequence[float],
    tol: float,
) -> bool:
    """True when ``a(x) < b(x) - tol`` at some union abscissa (clamped eval)."""
    na, nb = len(axs), len(bxs)
    ia = ib = 0
    sa = sb = 0
    last_x: float | None = None
    while ia < na or ib < nb:
        if ib >= nb or (ia < na and axs[ia] <= bxs[ib]):
            x = axs[ia]
            ia += 1
        else:
            x = bxs[ib]
            ib += 1
        if last_x is not None and x <= last_x + XTOL:
            continue
        last_x = x
        while sa < na - 1 and axs[sa + 1] <= x:
            sa += 1
        if x <= axs[0]:
            va = ays[0]
        elif sa >= na - 1:
            va = ays[na - 1]
        else:
            dx = axs[sa + 1] - axs[sa]
            va = (
                ays[sa]
                if dx <= XTOL
                else ays[sa] + (x - axs[sa]) / dx * (ays[sa + 1] - ays[sa])
            )
        while sb < nb - 1 and bxs[sb + 1] <= x:
            sb += 1
        if x <= bxs[0]:
            vb = bys[0]
        elif sb >= nb - 1:
            vb = bys[nb - 1]
        else:
            dx = bxs[sb + 1] - bxs[sb]
            vb = (
                bys[sb]
                if dx <= XTOL
                else bys[sb] + (x - bxs[sb]) / dx * (bys[sb + 1] - bys[sb])
            )
        if va < vb - tol:
            return True
    return False


# ----------------------------------------------------------------------
# Monotone operators: composition and inverse.
# ----------------------------------------------------------------------

def compose(
    oxs: Sequence[float],
    oys: Sequence[float],
    ixs: Sequence[float],
    iys: Sequence[float],
) -> tuple[list[float], list[float]]:
    """``outer ∘ inner`` for nondecreasing functions, fused.

    The output abscissae are the inner function's breakpoints plus the
    preimages of the outer's — exactly the §4.4 breakpoints the paper derives
    case-by-case.  Because the inner function is nondecreasing, preimages can
    be generated in globally sorted order while walking inner segments, and
    the outer function is evaluated with a forward-only cursor: a single
    ``O(n + m)`` sweep instead of one bisect per candidate breakpoint.
    """
    ni, no = len(ixs), len(oxs)
    _guard_size(ni + no, "compose")
    lo = iys[0]
    hi = iys[ni - 1]
    xs: list[float] = []
    ys: list[float] = []
    # Both cursors only ever move forward, so start them at the window:
    # with a full-horizon outer function (an overlay shortcut profile) a
    # zero start would pay a linear scan up to ``lo`` on every compose.
    oj = max(0, bisect_right(oxs, lo) - 1)  # outer evaluation cursor
    op = bisect_right(oxs, lo + XTOL)  # outer breakpoint preimage cursor

    def outer_at(v: float) -> float:
        nonlocal oj
        if v <= oxs[0]:
            return oys[0]
        while oj < no - 1 and oxs[oj + 1] <= v:
            oj += 1
        if oj >= no - 1:
            return oys[no - 1]
        dx = oxs[oj + 1] - oxs[oj]
        if dx <= XTOL:
            return oys[oj]
        return oys[oj] + (v - oxs[oj]) / dx * (oys[oj + 1] - oys[oj])

    for i in range(ni):
        x = ixs[i]
        if not xs or x > xs[-1] + XTOL:
            xs.append(x)
            ys.append(outer_at(iys[i]))
        if i + 1 >= ni:
            break
        y0, y1 = iys[i], iys[i + 1]
        if y1 - y0 <= XTOL:
            continue
        x1 = ixs[i + 1]
        while op < no and oxs[op] < y1 - XTOL:
            by = oxs[op]
            if by >= hi - XTOL:
                op = no
                break
            if by > y0 + XTOL:
                t = (by - y0) / (y1 - y0)
                xq = x + t * (x1 - x)
                if xq > xs[-1] + XTOL:
                    xs.append(xq)
                    ys.append(outer_at(by))
            op += 1
    COUNTERS.breakpoints_allocated += len(xs)
    return xs, ys


def inverse(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[list[float], list[float]]:
    """The inverse of a strictly increasing function: swap the axes.

    A flat segment (``y`` constant over a non-degenerate ``x`` interval)
    would make the inverse discontinuous and raises
    :class:`~repro.exceptions.NotMonotoneError`.  Near-duplicate ``y`` values
    over degenerate ``x`` spans are merged, mirroring construction dedupe.
    """
    n = len(xs)
    out_x: list[float] = []
    out_y: list[float] = []
    for i in range(n):
        if i + 1 < n and ys[i + 1] - ys[i] <= XTOL and xs[i + 1] - xs[i] > XTOL:
            raise NotMonotoneError(
                f"cannot invert: function is flat on [{xs[i]}, {xs[i + 1]}]"
            )
        y = ys[i]
        if out_x and y <= out_x[-1] + XTOL:
            continue
        out_x.append(y)
        out_y.append(xs[i])
    COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


# ----------------------------------------------------------------------
# Unary reshaping operators.
# ----------------------------------------------------------------------

def simplify(
    xs: Sequence[float], ys: Sequence[float], tol: float
) -> tuple[list[float], list[float]]:
    """Drop interior breakpoints within ``tol`` of the running chord."""
    n = len(xs)
    if n <= 2:
        return list(xs), list(ys)
    out_x: list[float] = [xs[0]]
    out_y: list[float] = [ys[0]]
    for i in range(1, n - 1):
        x0, y0 = out_x[-1], out_y[-1]
        x2, y2 = xs[i + 1], ys[i + 1]
        if x2 - x0 <= XTOL:
            continue
        t = (xs[i] - x0) / (x2 - x0)
        if abs(y0 + t * (y2 - y0) - ys[i]) > tol:
            out_x.append(xs[i])
            out_y.append(ys[i])
    out_x.append(xs[n - 1])
    out_y.append(ys[n - 1])
    COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


def restrict(
    xs: Sequence[float], ys: Sequence[float], lo: float, hi: float
) -> tuple[list[float], list[float]]:
    """Restrict to ``[lo, hi]`` (caller guarantees containment)."""
    if hi - lo <= XTOL:
        return [lo], [eval_at(xs, ys, lo)]
    i = bisect_right(xs, lo + XTOL)
    j = bisect_left(xs, hi - XTOL, i)
    out_x: list[float] = [lo, *xs[i:j], hi]
    out_y: list[float] = [eval_at(xs, ys, lo), *ys[i:j], eval_at(xs, ys, hi)]
    COUNTERS.breakpoints_allocated += len(out_x)
    return out_x, out_y


# ----------------------------------------------------------------------
# Annotated lower envelope: fused fold and k-way construction.
# ----------------------------------------------------------------------

def envelope_fold(
    bx: Sequence[float],
    slope: Sequence[float],
    icept: Sequence[float],
    tags: Sequence[Hashable],
    fxs: Sequence[float],
    fys: Sequence[float],
    new_tag: Hashable,
    lo: float,
    hi: float,
) -> tuple[list[float], list[float], list[float], list[Hashable], bool]:
    """Fold one function into an annotated envelope in a single sweep.

    The envelope is ``P`` pieces tiling ``[lo, hi]``: boundaries ``bx``
    (length ``P + 1``) with per-piece ``slope`` / ``icept`` / ``tags``.  An
    empty envelope (``bx`` empty) is +infinity everywhere.  Ties keep the
    incumbent piece (the paper's first-identified-path convention); the
    ``improved`` flag reports whether the new function won anywhere.

    Replaces the legacy rebuild that rescanned every envelope piece per
    elementary interval (quadratic in piece count) with two forward-only
    cursors over the envelope and the new function.
    """
    COUNTERS.envelope_merges += 1
    np_env = len(slope)
    nf = len(fxs)
    _guard_size(2 * (np_env + nf + 2), "envelope_fold")

    # Merged elementary boundaries: envelope boundaries ∪ clamped fn
    # breakpoints ∪ {lo, hi}, deduped within XTOL.
    bounds: list[float] = []
    ie = 0
    if_ = 0
    nb_env = len(bx)
    while ie < nb_env or if_ < nf:
        if if_ >= nf:
            x = bx[ie]
            ie += 1
        elif ie >= nb_env:
            x = fxs[if_]
            if_ += 1
        elif bx[ie] <= fxs[if_]:
            x = bx[ie]
            ie += 1
        else:
            x = fxs[if_]
            if_ += 1
        if x < lo - XTOL or x > hi + XTOL:
            continue
        x = lo if x < lo else (hi if x > hi else x)
        if not bounds or x > bounds[-1] + XTOL:
            bounds.append(x)
    # Snap the extreme bounds onto the domain edges: a breakpoint within
    # XTOL of lo/hi must not leave the partition starting (or ending) a
    # hair inside the domain.
    if not bounds or bounds[0] > lo + XTOL:
        bounds.insert(0, lo)
    else:
        bounds[0] = lo
    if len(bounds) == 1:
        bounds.append(bounds[0])
    elif bounds[-1] < hi - XTOL:
        bounds.append(hi)
    else:
        bounds[-1] = hi

    out_bx: list[float] = []
    out_slope: list[float] = []
    out_icept: list[float] = []
    out_tags: list[Hashable] = []
    improved = False

    def emit(x0: float, x1: float, sl: float, ic: float, tg: Hashable) -> None:
        if x1 - x0 <= XTOL and out_slope:
            return
        if (
            out_slope
            and out_tags[-1] == tg
            and abs(out_slope[-1] - sl) <= 1e-9
            and abs(out_icept[-1] - ic) <= 1e-6
        ):
            out_bx[-1] = x1
            return
        if not out_bx:
            out_bx.append(x0)
        out_bx.append(x1)
        out_slope.append(sl)
        out_icept.append(ic)
        out_tags.append(tg)

    if len(bounds) == 2 and bounds[1] - bounds[0] <= XTOL:
        # Degenerate single-instant domain.
        x = bounds[0]
        new_val = eval_at(fxs, fys, x)
        if np_env == 0:
            return [x, x], [0.0], [new_val], [new_tag], True
        old_val = slope[0] * x + icept[0]
        if new_val < old_val - YTOL:
            return [x, x], [0.0], [new_val], [new_tag], True
        return list(bx), list(slope), list(icept), list(tags), False

    ep = 0  # envelope piece cursor
    fp = 0  # fn segment cursor
    for i in range(len(bounds) - 1):
        x0, x1 = bounds[i], bounds[i + 1]
        # Line of fn over [x0, x1]: the segment containing the midpoint.
        mid = 0.5 * (x0 + x1)
        while fp < nf - 2 and fxs[fp + 1] <= mid:
            fp += 1
        if nf == 1:
            f_sl, f_ic = 0.0, fys[0]
        else:
            fx0, fx1 = fxs[fp], fxs[fp + 1]
            dx = fx1 - fx0
            f_sl = 0.0 if dx <= XTOL else (fys[fp + 1] - fys[fp]) / dx
            f_ic = fys[fp] - f_sl * fx0
        if np_env == 0:
            emit(x0, x1, f_sl, f_ic, new_tag)
            improved = True
            continue
        while ep < np_env - 1 and bx[ep + 1] <= mid:
            ep += 1
        e_sl, e_ic, e_tag = slope[ep], icept[ep], tags[ep]
        d0 = (f_sl * x0 + f_ic) - (e_sl * x0 + e_ic)
        d1 = (f_sl * x1 + f_ic) - (e_sl * x1 + e_ic)
        if d0 >= -YTOL and d1 >= -YTOL:
            emit(x0, x1, e_sl, e_ic, e_tag)
        elif d0 <= YTOL and d1 <= YTOL:
            # At or below the incumbent: only claim when strictly better
            # somewhere on the interval.
            if d0 < -YTOL or d1 < -YTOL:
                emit(x0, x1, f_sl, f_ic, new_tag)
                improved = True
            else:
                emit(x0, x1, e_sl, e_ic, e_tag)
        else:
            denom = f_sl - e_sl
            x_cross = (e_ic - f_ic) / denom if abs(denom) > 1e-15 else mid
            x_cross = x0 if x_cross < x0 else (x1 if x_cross > x1 else x_cross)
            if d0 < 0:
                emit(x0, x_cross, f_sl, f_ic, new_tag)
                emit(x_cross, x1, e_sl, e_ic, e_tag)
            else:
                emit(x0, x_cross, e_sl, e_ic, e_tag)
                emit(x_cross, x1, f_sl, f_ic, new_tag)
            improved = True
    COUNTERS.breakpoints_allocated += len(out_bx)
    return out_bx, out_slope, out_icept, out_tags, improved


def lower_envelope(
    functions: Sequence[tuple[Sequence[float], Sequence[float], Hashable]],
    lo: float,
    hi: float,
) -> tuple[list[float], list[float], list[float], list[Hashable]]:
    """K-way annotated lower envelope of ``(xs, ys, tag)`` functions.

    Folds the inputs one by one with :func:`envelope_fold`; each fold is a
    single merge sweep, so the total work is linear in the sum of the input
    sizes times the number of folds (the classic incremental construction).
    """
    bx: list[float] = []
    slope: list[float] = []
    icept: list[float] = []
    tags: list[Hashable] = []
    for fxs, fys, tag in functions:
        bx, slope, icept, tags, _ = envelope_fold(
            bx, slope, icept, tags, fxs, fys, tag, lo, hi
        )
    return bx, slope, icept, tags


# ----------------------------------------------------------------------
# Batched entry points.  These reference definitions simply loop over the
# single-function operators (which dispatch per backend); the numpy backend
# overrides compose_many / merge_min_many with versions that amortize the
# ndarray conversions across the whole set.
# ----------------------------------------------------------------------

def compose_many(
    oxs: Sequence[float],
    oys: Sequence[float],
    inners: Iterable[tuple[Sequence[float], Sequence[float]]],
) -> list[tuple[list[float], list[float]]]:
    """Compose one outer function with many inners (ragged sizes fine)."""
    return [compose(oxs, oys, ixs, iys) for ixs, iys in inners]


def merge_min_many(
    functions: Iterable[tuple[Sequence[float], Sequence[float]]],
) -> tuple[list[float], list[float]]:
    """Left-fold pointwise minimum over a stacked function set."""
    it = iter(functions)
    try:
        fxs, fys = next(it)
    except StopIteration:
        raise ValueError("merge_min_many requires at least one function")
    xs, ys = list(fxs), list(fys)
    for gxs, gys in it:
        xs, ys = merge_min(xs, ys, gxs, gys)
    return xs, ys


def envelope_fold_many(
    bx: Sequence[float],
    slope: Sequence[float],
    icept: Sequence[float],
    tags: Sequence[Hashable],
    functions: Iterable[tuple[Sequence[float], Sequence[float], Hashable]],
    lo: float,
    hi: float,
) -> tuple[list[float], list[float], list[float], list[Hashable], bool]:
    """Fold a stacked function set into an annotated envelope.

    Generalizes :func:`lower_envelope` to start from an existing envelope
    and to report whether any function improved it anywhere.
    """
    out = (list(bx), list(slope), list(icept), list(tags))
    improved_any = False
    for fxs, fys, tag in functions:
        *out, improved = envelope_fold(*out, fxs, fys, tag, lo, hi)
        improved_any = improved_any or improved
    return out[0], out[1], out[2], out[3], improved_any


# ----------------------------------------------------------------------
# Backend dispatch.  All call sites resolve operators as module attributes
# (``kernel.<op>(...)``), so switching backends is a module-global rebind.
# ----------------------------------------------------------------------

#: Operators swapped when the backend changes.  Everything else
#: (eval_at, min_travel, snap_monotone, lower_envelope, envelope_fold_many)
#: is either scalar or defined in terms of these.
_DISPATCHED_OPS = (
    "merge_add",
    "merge_min",
    "lt_somewhere",
    "le_everywhere",
    "compose",
    "inverse",
    "simplify",
    "restrict",
    "envelope_fold",
    "compose_many",
    "merge_min_many",
)

#: The array implementations, captured before any rebinding so the numpy
#: backend's rare sequential fallbacks (and tests) can reach them.
_ARRAY_IMPLS = {name: globals()[name] for name in _DISPATCHED_OPS}

_BACKEND = "array"


def _load_numpy_backend():
    """Import :mod:`repro.func.kernel_np`, or None when numpy is absent."""
    try:
        import numpy  # noqa: F401

        from . import kernel_np
    except ImportError:
        return None
    return kernel_np


def numpy_available() -> bool:
    """Whether the numpy backend can be loaded in this environment."""
    return _load_numpy_backend() is not None


def get_backend() -> str:
    """The currently installed kernel backend: ``array`` or ``numpy``."""
    return _BACKEND


def active_backend() -> str:
    """The backend actually answering queries (``legacy`` when disabled)."""
    return _BACKEND if KERNEL_ENABLED else "legacy"


def set_backend(name: str) -> str:
    """Install a kernel backend by name; returns the previous name.

    ``numpy`` requires numpy to be importable; when it is not, the request
    degrades to ``array`` with a one-line stderr note instead of raising —
    numpy is an optional dependency everywhere in this codebase.
    """
    global _BACKEND
    previous = _BACKEND
    requested = name.strip().lower()
    if requested == "array":
        impls = _ARRAY_IMPLS
        installed = "array"
    elif requested in ("numpy", "np"):
        module = _load_numpy_backend()
        if module is None:
            print(
                "repro: numpy is unavailable; kernel backend 'numpy' "
                "falls back to 'array'",
                file=sys.stderr,
            )
            impls = _ARRAY_IMPLS
            installed = "array"
        else:
            impls = {op: getattr(module, op) for op in _DISPATCHED_OPS}
            installed = "numpy"
    else:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected 'array' or 'numpy'"
        )
    globals().update(impls)
    _BACKEND = installed
    return previous


if _RAW_KERNEL_ENV in ("numpy", "np"):
    set_backend("numpy")
