"""Sharded multi-process serve tier with shared-memory estimator tables.

``repro.shard`` splits one serve deployment across N worker processes,
each hosting a full :class:`~repro.serve.service.AllFPService`, behind an
in-process consistent-hash router:

* :mod:`repro.shard.ring` — the hash ring and the per-mode routing-key
  normalisation (cache affinity + minimal movement);
* :mod:`repro.shard.worker` — the worker process main loop and the
  pipe wire protocol (results as dicts, errors as typed descriptors);
* :mod:`repro.shard.tier` — :class:`ShardedService`, the router with
  per-shard circuit breakers, ring failover, and worker restart.

See ``docs/sharding.md`` for the architecture and the shared-memory
lifecycle rules.
"""

from .ring import DEFAULT_REPLICAS, HashRing, routing_key, stable_hash
from .tier import ShardedService, WireResult
from .worker import (
    KILL_POINT,
    WorkerBoot,
    describe_error,
    private_rss_kb,
    rebuild_error,
    request_from_wire,
    request_to_wire,
    run_worker,
)

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "KILL_POINT",
    "ShardedService",
    "WireResult",
    "WorkerBoot",
    "describe_error",
    "private_rss_kb",
    "rebuild_error",
    "request_from_wire",
    "request_to_wire",
    "routing_key",
    "run_worker",
    "stable_hash",
]
