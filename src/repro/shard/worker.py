"""The shard worker process: one :class:`AllFPService` behind a pipe.

Each worker is a "dumb server" in the memcached sense — it owns no routing
logic, just answers what arrives on its :class:`multiprocessing` pipe.  The
parent-side router (:mod:`repro.shard.tier`) speaks a tiny tuple protocol:

* ``("query", req_id, wire_request)`` → ``("ok", req_id, wire_response)``
  or ``("err", req_id, error_descriptor)``
* ``("control", req_id, op, arg)`` for healthz / metrics / stats /
  invalidate / meminfo / fault install / close

Results cross the pipe as their ``as_dict()`` payloads and errors as typed
descriptors (class name + salient attributes) rather than pickled objects:
exception classes with custom ``__init__`` signatures don't survive
unpickling, and the dict forms are exactly what the HTTP layer serves
anyway.  The parent rebuilds typed :class:`~repro.exceptions.ReproError`
subclasses from the descriptors so ``isinstance`` checks (and the HTTP
status mapping) behave identically with and without ``--shards``.

Estimator tables arrive one of three ways, cheapest first:

* ``snapshot_path`` — the worker ``mmap``s the RPRESNAP file read-only
  (:func:`~repro.estimators.snapshot.map_tables`); all workers share one
  page-cache copy;
* ``shm_name`` — the worker attaches the parent's shared-memory image
  (:func:`~repro.estimators.snapshot.attach_tables`), zero-copy unless
  ``copy_tables`` deliberately materialises private arrays (the
  benchmark's per-process baseline);
* ``estimator_obj`` — a fork-inherited estimator object (tests and
  in-memory runs without a snapshot).

A failed table load degrades to the naive bound (still admissible → still
exact answers) instead of refusing to boot, mirroring the single-process
CLI behaviour.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from .. import reliability
from ..core.runtime import QueryTimeout, SearchBudgetExceeded
from ..core.results import SearchStats
from ..estimators.naive import NaiveEstimator
from ..exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    NoPathError,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    StalenessExceeded,
    WorkerCrashed,
)
from ..timeutil import TimeInterval

#: Fault point fired on every received message; an injected error here
#: simulates a hard worker crash (``os._exit``), which the chaos harness
#: and the shard-smoke CI job use to exercise router failover.
KILL_POINT = "repro.shard.worker.kill"


@dataclass
class WorkerBoot:
    """Everything a worker needs to build its service (fork- and
    spawn-safe: every field is picklable or ``None``)."""

    shard_id: int
    shard_count: int
    config: object  # ServiceConfig (imported lazily to keep forks cheap)
    network: object | None = None
    network_path: str | None = None
    estimator: str | None = None  # None | "naive" | "boundary"
    estimator_obj: object | None = None
    snapshot_path: str | None = None
    shm_name: str | None = None
    fingerprint: bytes | None = None
    grid: int = 6
    copy_tables: bool = False
    fault_plan: object | None = None  # reliability.FaultPlan
    degraded: bool = field(default=False)
    #: v2 snapshot whose overlay section the worker mmaps for warm boot.
    overlay_path: str | None = None


def private_rss_kb() -> int:
    """This process's private resident set in kB.

    ``smaps_rollup`` (Private_Clean + Private_Dirty) is the honest number
    for the shared-memory comparison — mmap'ed/shm pages a worker merely
    reads stay out of it; falls back to VmRSS, then 0 on exotic systems.
    """
    try:
        total = 0
        with open("/proc/self/smaps_rollup") as f:
            for line in f:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1])
        return total
    except (OSError, ValueError, IndexError):
        pass
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def _load_network(path: str):
    """Open the worker's own network handle (never share a .ccam file
    object across processes — the store's file offset would race)."""
    from pathlib import Path

    from ..network.io import load_network
    from ..storage.ccam import CCAMStore

    if Path(path).suffix == ".ccam":
        return CCAMStore.open(path)
    return load_network(path)


def _build_estimator(network, boot: WorkerBoot):
    """Returns ``(estimator, degraded, tables_info)``."""
    from ..estimators.boundary import BoundaryNodeEstimator
    from ..estimators import snapshot as snap

    info = {
        "tables_mode": "none",
        "tables_bytes": 0,
        "tables_rss_delta_kb": 0,
    }
    if boot.estimator_obj is not None:
        tables = getattr(boot.estimator_obj, "tables", None)
        info["tables_mode"] = "inherited"
        info["tables_bytes"] = getattr(tables, "nbytes", 0)
        return boot.estimator_obj, False, info
    if boot.estimator is None:
        return None, False, info
    if boot.estimator == "naive":
        info["tables_mode"] = "naive"
        return NaiveEstimator(network), False, info

    # boundary estimator over shared (or deliberately copied) tables
    rss_before = private_rss_kb()
    try:
        if boot.snapshot_path is not None and not boot.copy_tables:
            tables = snap.map_tables(boot.snapshot_path, boot.fingerprint)
            mode = "mmap"
        elif boot.shm_name is not None:
            tables, _handle = snap.attach_tables(
                boot.shm_name, boot.fingerprint, copy=boot.copy_tables
            )
            mode = "copy" if boot.copy_tables else "shm"
        elif boot.snapshot_path is not None:
            tables = snap.load_tables(boot.snapshot_path, boot.fingerprint)
            mode = "copy"
        else:
            estimator = BoundaryNodeEstimator(network, boot.grid, boot.grid)
            info["tables_mode"] = "local"
            tables = estimator.tables
            info["tables_bytes"] = getattr(tables, "nbytes", 0)
            info["tables_rss_delta_kb"] = private_rss_kb() - rss_before
            return estimator, False, info
        estimator = BoundaryNodeEstimator(
            network, tables.nx, tables.ny, tables.metric, tables=tables
        )
    except ReproError as exc:
        # Graceful degradation, same contract as a single-process boot:
        # serve exact answers on the (admissible) naive bound, flagged.
        info["tables_mode"] = "fallback"
        info["error"] = str(exc)
        return NaiveEstimator(network), True, info
    info["tables_mode"] = mode
    info["tables_bytes"] = tables.nbytes
    info["tables_rss_delta_kb"] = private_rss_kb() - rss_before
    return estimator, False, info


def _load_overlay(network, boot: WorkerBoot):
    """Returns ``(overlay, degraded, overlay_info)`` — mmap'ed warm boot.

    A failed overlay load falls back to flat-graph queries (still exact,
    only slower), flagged degraded — the same graceful-degradation
    contract as a failed estimator-table load.
    """
    from ..estimators import snapshot as snap

    if boot.overlay_path is None:
        return None, False, {"overlay_mode": "none"}
    try:
        overlay = snap.map_overlay(boot.overlay_path, network)
    except ReproError as exc:
        return None, True, {"overlay_mode": "fallback", "overlay_error": str(exc)}
    return (
        overlay,
        False,
        {
            "overlay_mode": "mmap",
            "overlay_levels": overlay.level_count,
            "overlay_shortcuts": overlay.stats.shortcuts,
        },
    )


# ----------------------------------------------------------------------
# Wire forms
# ----------------------------------------------------------------------
def request_to_wire(request) -> dict:
    return {
        "source": request.source,
        "target": request.target,
        "start": request.interval.start,
        "end": request.interval.end,
        "mode": request.mode,
        "deadline": request.deadline,
        "targets": request.targets,
        "candidates": request.candidates,
        "k": request.k,
        "pairs": request.pairs,
        "max_staleness": request.max_staleness,
    }


def request_from_wire(doc: dict):
    from ..serve.service import QueryRequest

    return QueryRequest(
        source=doc["source"],
        target=doc["target"],
        interval=TimeInterval(doc["start"], doc["end"]),
        mode=doc["mode"],
        deadline=doc["deadline"],
        targets=doc["targets"],
        candidates=doc["candidates"],
        k=doc["k"],
        pairs=doc["pairs"],
        max_staleness=doc.get("max_staleness"),
    )


def response_to_wire(response) -> dict:
    return {
        "result": response.result.as_dict(),
        "cached": response.cached,
        "coalesced": response.coalesced,
        "elapsed_seconds": response.elapsed_seconds,
        "degraded": response.degraded,
        "stale": response.stale,
        "version": response.version,
    }


def describe_error(exc: BaseException) -> dict:
    """A picklable descriptor the parent rebuilds a typed error from."""
    attrs: dict = {}
    if isinstance(exc, QueryTimeout):
        attrs["deadline"] = exc.deadline
    elif isinstance(exc, SearchBudgetExceeded):
        attrs["budget"] = exc.budget
        attrs["what"] = exc.what
    elif isinstance(exc, NoPathError):
        attrs["source"] = exc.source
        attrs["target"] = exc.target
    elif isinstance(exc, EdgeNotFoundError):
        attrs["source"] = exc.source
        attrs["target"] = exc.target
    elif isinstance(exc, NodeNotFoundError):
        attrs["node_id"] = exc.node_id
    elif isinstance(exc, ServiceOverloaded):
        attrs["pending"] = exc.pending
        attrs["max_pending"] = exc.max_pending
        attrs["retry_after"] = exc.retry_after
    elif isinstance(exc, StalenessExceeded):
        attrs["staleness"] = exc.staleness
        attrs["max_staleness"] = exc.max_staleness
    elif isinstance(exc, WorkerCrashed):
        attrs["attempts"] = exc.attempts
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "repro": isinstance(exc, ReproError),
        "attrs": attrs,
    }


def rebuild_error(desc: dict) -> ReproError:
    """The typed error a descriptor stands for.

    Known classes with structured constructors are rebuilt exactly (so
    ``isinstance`` and the HTTP status mapping keep working); anything
    else becomes a :class:`ServiceError` carrying the original text.
    """
    from .. import exceptions as exc_mod

    name = desc.get("type", "ReproError")
    message = desc.get("message", "")
    attrs = desc.get("attrs", {})
    if name == "QueryTimeout":
        return QueryTimeout(
            attrs.get("deadline", 0.0), SearchStats(timed_out=True)
        )
    if name == "SearchBudgetExceeded":
        return SearchBudgetExceeded(
            attrs.get("budget", 0), SearchStats(), attrs.get("what", "max_pops")
        )
    if name == "NoPathError":
        return NoPathError(attrs.get("source", -1), attrs.get("target", -1))
    if name == "EdgeNotFoundError":
        return EdgeNotFoundError(attrs.get("source", -1), attrs.get("target", -1))
    if name == "NodeNotFoundError":
        return NodeNotFoundError(attrs.get("node_id", -1))
    if name == "ServiceOverloaded":
        return ServiceOverloaded(
            attrs.get("pending", 0),
            attrs.get("max_pending", 0),
            attrs.get("retry_after", 0.05),
        )
    if name == "StalenessExceeded":
        return StalenessExceeded(
            attrs.get("staleness", 0.0), attrs.get("max_staleness", 0.0)
        )
    if name == "WorkerCrashed":
        return WorkerCrashed(attrs.get("attempts", 1), message)
    cls = getattr(exc_mod, name, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and desc.get("repro", False)
    ):
        try:
            return cls(message)
        except TypeError:
            pass
    return ServiceError(f"{name}: {message}")


# ----------------------------------------------------------------------
# Worker main
# ----------------------------------------------------------------------
def run_worker(boot: WorkerBoot, conn) -> None:
    """Process entry point: build the service, then serve the pipe.

    Exit paths: a ``close`` control (clean), EOF on the pipe (parent
    gone), an injected :data:`KILL_POINT` fault (``os._exit(1)``, the
    simulated hard crash), or a boot failure reported as ``boot_error``.
    """
    if boot.fault_plan is not None:
        reliability.install(boot.fault_plan)
    from ..serve.service import AllFPService

    try:
        network = (
            boot.network
            if boot.network is not None
            else _load_network(boot.network_path)
        )
        estimator, degraded, tables_info = _build_estimator(network, boot)
        overlay, overlay_degraded, overlay_info = _load_overlay(network, boot)
        tables_info = {**tables_info, **overlay_info}
        config = replace(
            boot.config,
            shard_id=boot.shard_id,
            shard_count=boot.shard_count,
        )
        service = AllFPService(
            network,
            estimator,
            config,
            degraded=degraded or overlay_degraded or boot.degraded,
            overlay=overlay,
        )
    except BaseException as exc:  # noqa: BLE001 — report, then die
        try:
            conn.send(
                ("boot_error", -1, {
                    "type": type(exc).__name__, "message": str(exc),
                })
            )
            conn.close()
        except OSError:
            pass
        os._exit(3)

    ready = {
        "shard_id": boot.shard_id,
        "pid": os.getpid(),
        "degraded": service.degraded,
        "rss_kb": private_rss_kb(),
        **tables_info,
    }
    conn.send(("ready", -1, ready))

    send_lock = threading.Lock()

    def reply(kind: str, req_id: int, payload) -> None:
        with send_lock:
            try:
                conn.send((kind, req_id, payload))
            except (OSError, ValueError):
                pass  # parent is gone; the recv loop will exit next

    def handle_query(req_id: int, doc: dict) -> None:
        try:
            response = service.query(request_from_wire(doc))
            reply("ok", req_id, response_to_wire(response))
        except BaseException as exc:  # noqa: BLE001 — descriptors, not pickles
            reply("err", req_id, describe_error(exc))

    pool = ThreadPoolExecutor(
        max_workers=max(2, service.config.workers),
        thread_name_prefix=f"repro-shard-{boot.shard_id}",
    )
    running = True
    while running:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        try:
            reliability.fire(KILL_POINT)
        except BaseException:  # noqa: BLE001 — any injected error = crash
            os._exit(1)
        kind = message[0]
        if kind == "query":
            _, req_id, doc = message
            pool.submit(handle_query, req_id, doc)
            continue
        _, req_id, op, arg = message
        try:
            if op == "close":
                reply("ok", req_id, {})
                running = False
            elif op == "healthz":
                reply("ok", req_id, {
                    "shard_id": boot.shard_id,
                    "pid": os.getpid(),
                    "status": "degraded" if service.degraded else "ok",
                    "degraded": service.degraded,
                    "version": service.version,
                    "applied_version": service.net_version,
                    "staleness_seconds": service.staleness_seconds(),
                    "pending_updates": service.pending_updates,
                })
            elif op == "metrics":
                reply("ok", req_id, {"text": service.render_metrics()})
            elif op == "stats":
                reply("ok", req_id, service.stats())
            elif op == "apply_updates":
                from ..serve.updates import MutationBatch

                batch = MutationBatch.from_wire(arg["batch"])
                version = service.apply_updates(
                    batch, version=arg.get("version")
                )
                reply("ok", req_id, {
                    "version": version, "applied": len(batch),
                })
            elif op == "invalidate":
                dropped = service.invalidate(refresh_estimator=bool(arg))
                reply("ok", req_id, {
                    "dropped": dropped, "version": service.version,
                })
            elif op == "meminfo":
                reply("ok", req_id, {
                    "pid": os.getpid(),
                    "rss_kb": private_rss_kb(),
                    **tables_info,
                })
            elif op == "install_faults":
                reliability.install(reliability.FaultPlan.from_dict(arg))
                reply("ok", req_id, {})
            elif op == "uninstall_faults":
                fired = reliability.fired_total()
                reliability.uninstall()
                reply("ok", req_id, {"fired": fired})
            else:
                reply("err", req_id, {
                    "type": "ServiceError",
                    "message": f"unknown control op {op!r}",
                    "repro": True,
                    "attrs": {},
                })
        except BaseException as exc:  # noqa: BLE001
            reply("err", req_id, describe_error(exc))
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        service.close()
    except Exception:
        pass
    try:
        conn.close()
    except OSError:
        pass
