"""Consistent-hash ring: normalized query keys onto shard ids.

The memcached-style design — dumb servers, the client owns routing and
failover — applied in-process: the router hangs every shard on the ring at
``replicas`` virtual points and sends each query to the first shard at or
after the key's hash.  Two properties make this the right structure for a
cache-affine serve tier:

* **affinity** — a key maps to the same shard on every process and every
  boot (the hash is sha256 over the key text, *not* Python's per-process
  salted ``hash()``), so a shard's edge-function and result caches only
  ever see "their" keys and stay hot;
* **minimal movement** — removing a shard reassigns only the keys that
  lived on it (its virtual arcs are absorbed by the ring successors);
  every other key keeps its shard and its warm caches.

Routing keys are *normalized* per mode so that all requests which benefit
from the same warm state land together: allFP/profile/knn queries route by
source (one source's edge-function working set is shared across its
targets), singleFP by the (source, target) pair, and batch by its sorted
distinct source group (the batch engine runs one profile search per
distinct source).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, Sequence

#: Virtual points per shard.  128 keeps the max/mean load ratio well under
#: the 2x property-test bound at 10k keys while the ring stays tiny
#: (N * 128 sorted ints).
DEFAULT_REPLICAS = 128


def stable_hash(text: str) -> int:
    """A 64-bit position derived from sha256 — identical across processes,
    platforms, and interpreter restarts (unlike the salted ``hash()``)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


def routing_key(request) -> str:
    """The normalized key a :class:`~repro.serve.service.QueryRequest`
    routes by (see the module docstring for the per-mode rationale)."""
    mode = request.mode
    if mode == "singlefp":
        return f"pair:{request.source}:{request.target}"
    if mode == "batch":
        sources = sorted({int(s) for s, _ in request.pairs})
        return "group:" + ",".join(str(s) for s in sources)
    # allfp, profile, knn: one-source working sets
    return f"src:{request.source}"


class HashRing:
    """Shard ids on a consistent-hash ring with virtual nodes."""

    def __init__(
        self,
        shard_ids: Iterable[int],
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        ids = list(dict.fromkeys(shard_ids))
        if not ids:
            raise ValueError("a hash ring needs at least one shard")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._ids: list[int] = []
        self._points: list[tuple[int, int]] = []  # (position, shard_id)
        for sid in ids:
            self.add(sid)

    # ------------------------------------------------------------------
    def _vnode_points(self, shard_id: int) -> list[tuple[int, int]]:
        return [
            (stable_hash(f"shard:{shard_id}#{r}"), shard_id)
            for r in range(self._replicas)
        ]

    def add(self, shard_id: int) -> None:
        if shard_id in self._ids:
            return
        self._ids.append(shard_id)
        for point in self._vnode_points(shard_id):
            insort(self._points, point)

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._ids:
            return
        self._ids.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(self._ids)

    @property
    def replicas(self) -> int:
        return self._replicas

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> int:
        """The shard owning ``key`` (first virtual point at or after it)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, count: int | None = None) -> list[int]:
        """Distinct shards in ring order from ``key``'s position.

        The first entry is the owner; the rest are the failover order the
        router walks when a shard is dead or its breaker is open.
        """
        if not self._points:
            raise ValueError("a hash ring needs at least one shard")
        if count is None:
            count = len(self._ids)
        position = stable_hash(key)
        start = bisect_right(self._points, (position, -1))
        order: list[int] = []
        seen: set[int] = set()
        n = len(self._points)
        for step in range(n):
            sid = self._points[(start + step) % n][1]
            if sid not in seen:
                seen.add(sid)
                order.append(sid)
                if len(order) >= count:
                    break
        return order

    def assignment(self, keys: Sequence[str]) -> dict[str, int]:
        """``{key: owner}`` for a batch of keys (property tests, tooling)."""
        return {key: self.node_for(key) for key in keys}
