"""The sharded serve tier: N worker processes behind one in-process router.

:class:`ShardedService` presents the same surface the HTTP layer and the
clients already program against (``query`` / ``healthz`` / ``stats`` /
``render_metrics`` / ``invalidate`` / ``close``), but fans queries out to
worker processes over pipes, routed by the consistent-hash ring
(:mod:`repro.shard.ring`) so each shard's edge-function and result caches
only ever see their own keyspace and stay hot.

Reliability is the PR-5 contract lifted to shard granularity:

* every shard has a **circuit breaker** — consecutive dispatch failures
  open it and the router stops offering that shard queries until the
  reset window elapses;
* a dead or breaker-open shard is **routed around**: the router walks the
  ring's preference order and serves the answer from the first live
  successor, flagging the response ``degraded`` with ``degraded_shard``
  set to the preferred shard that could not answer (the answer itself is
  still exact — every worker holds the full network);
* a crashed worker is **restarted** (bounded by ``restart_limit`` per
  shard) by the receiver thread that observed the death; its in-flight
  requests fail over immediately rather than waiting for the restart.

Typed query errors (``NoPathError``, ``QueryTimeout``, ...) are answers,
not shard failures: they are re-raised to the caller without failover and
without tripping the breaker.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

from .. import reliability
from ..exceptions import ReproError, ServiceClosed, ShardUnavailable
from ..serve.metrics import MetricsRegistry
from ..serve.service import QueryResponse, ServiceConfig
from ..serve.updates import MutationBatch, apply_batch, validate_batch
from .ring import DEFAULT_REPLICAS, HashRing, routing_key
from .worker import (
    WorkerBoot,
    rebuild_error,
    request_to_wire,
    run_worker,
)

#: Seconds past a query's deadline before the router gives up on a shard
#: and fails over.  Worker death is detected faster (EOF on the pipe);
#: the grace window only matters for a hung-but-alive worker.
DEFAULT_DISPATCH_GRACE = 15.0

#: Fallback dispatch timeout when the service runs without deadlines.
DEFAULT_DISPATCH_TIMEOUT = 60.0


class WireResult:
    """A result that crossed the pipe as its ``as_dict()`` payload.

    The HTTP layer (and the chaos harness's canonicalisation) only ever
    consume results through ``as_dict()``, so the router hands back the
    worker's dict verbatim instead of reconstructing engine objects.
    """

    __slots__ = ("_doc",)

    def __init__(self, doc: dict) -> None:
        self._doc = doc

    def as_dict(self) -> dict:
        return self._doc

    def __getitem__(self, key):
        return self._doc[key]

    def __repr__(self) -> str:
        return f"WireResult(keys={sorted(self._doc)})"


class _Waiter:
    __slots__ = ("event", "kind", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.kind: str | None = None
        self.payload = None

    def resolve(self, kind: str, payload) -> None:
        self.kind = kind
        self.payload = payload
        self.event.set()


@dataclass
class _ShardHandle:
    """Parent-side state for one worker process."""

    shard_id: int
    process: object = None
    conn: object = None
    breaker: reliability.CircuitBreaker = None
    alive: bool = False
    boot_info: dict = field(default_factory=dict)
    restarts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    pending: dict = field(default_factory=dict)
    next_id: int = 0
    receiver: threading.Thread = None

    def register(self) -> tuple[int, _Waiter]:
        waiter = _Waiter()
        with self.lock:
            if not self.alive:
                raise ShardUnavailable(self.shard_id, "worker is down")
            req_id = self.next_id
            self.next_id += 1
            self.pending[req_id] = waiter
        return req_id, waiter

    def discard(self, req_id: int) -> None:
        with self.lock:
            self.pending.pop(req_id, None)

    def fail_pending(self, reason: str) -> None:
        with self.lock:
            self.alive = False
            pending, self.pending = self.pending, {}
        for waiter in pending.values():
            waiter.resolve("down", reason)


class ShardedService:
    """Route queries across ``shards`` worker processes (see module doc).

    Estimator tables reach the workers by the cheapest available
    transport, decided here once:

    * ``snapshot_path`` set → each worker ``mmap``s the RPRESNAP file
      (zero-copy, one page-cache image machine-wide);
    * a boundary ``estimator`` with tables → the parent publishes one
      shared-memory image (:func:`~repro.estimators.snapshot.share_tables`)
      and workers attach read-only views (``copy_tables=True`` forces the
      private-copy baseline the benchmark compares against);
    * any other ``estimator`` → fork-inherited as an object;
    * none → workers run estimator-free (or ``estimator_kind="naive"``).
    """

    def __init__(
        self,
        network,
        estimator=None,
        config: ServiceConfig | None = None,
        *,
        shards: int = 2,
        network_path: str | None = None,
        snapshot_path: str | None = None,
        overlay_path: str | None = None,
        fingerprint: bytes | None = None,
        estimator_kind: str | None = None,
        grid: int = 6,
        copy_tables: bool = False,
        replicas: int = DEFAULT_REPLICAS,
        restart_limit: int = 3,
        dispatch_grace: float = DEFAULT_DISPATCH_GRACE,
        breaker_failures: int = 3,
        breaker_reset: float = 5.0,
        fault_plan=None,
        degraded: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config or ServiceConfig()
        self._network = network
        self._shards = shards
        self._grace = dispatch_grace
        self._restart_limit = restart_limit
        self._breaker_failures = breaker_failures
        self._breaker_reset = breaker_reset
        self._fault_plan = fault_plan
        self._closed = False
        self._close_lock = threading.Lock()
        self._version = 1
        # Live-update state: the applied network version, the ordered log
        # of broadcast batches (replayed into restarted workers so a fresh
        # fork catches up before taking queries), and pending accounting
        # for the bounded-staleness surface.
        self._net_version = 0
        self._update_lock = threading.Lock()
        self._mutation_log: list[dict] = []
        self._pending_lock = threading.Lock()
        self._pending_updates: list[float] = []
        self._update_batches_applied = 0
        self._update_mutations_applied = 0
        self._max_staleness_observed = 0.0
        self._ring = HashRing(range(shards), replicas)
        self.metrics = MetricsRegistry()
        self._shared = None  # SharedTables when the shm transport is used

        boot_kwargs = self._plan_transport(
            network,
            estimator,
            network_path=network_path,
            snapshot_path=snapshot_path,
            overlay_path=overlay_path,
            fingerprint=fingerprint,
            estimator_kind=estimator_kind,
            grid=grid,
            copy_tables=copy_tables,
            degraded=degraded,
        )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            self._ctx = multiprocessing.get_context()
        self._boot_kwargs = boot_kwargs
        self._handles: dict[int, _ShardHandle] = {}
        try:
            for sid in range(shards):
                handle = _ShardHandle(
                    shard_id=sid,
                    breaker=reliability.CircuitBreaker(
                        breaker_failures, breaker_reset
                    ),
                )
                self._handles[sid] = handle
                self._start_worker(handle)
        except BaseException:
            self.close()
            raise
        self.metrics.set_gauge("shard_count", float(shards))
        self.metrics.set_gauge(
            "shards_alive",
            lambda: float(
                sum(1 for h in self._handles.values() if h.alive)
            ),
        )
        self.metrics.set_gauge(
            "network_applied_version",
            lambda: float(self._net_version),
            help="Live-update batches broadcast by the tier",
        )
        self.metrics.set_gauge(
            "update_staleness_seconds",
            self.staleness_seconds,
            help="Age of the oldest accepted-but-unbroadcast update batch",
        )
        self.metrics.set_gauge(
            "updates_pending",
            lambda: float(len(self._pending_updates)),
            help="Update batches accepted and not yet applied on every "
            "live shard",
        )

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------
    def _plan_transport(
        self,
        network,
        estimator,
        *,
        network_path,
        snapshot_path,
        overlay_path,
        fingerprint,
        estimator_kind,
        grid,
        copy_tables,
        degraded,
    ) -> dict:
        from ..estimators import snapshot as snap
        from ..estimators.boundary import BoundaryNodeEstimator
        from ..estimators.naive import NaiveEstimator

        kwargs: dict = {
            "grid": grid,
            "copy_tables": copy_tables,
            "degraded": degraded,
        }
        # .ccam stores must not be forked (shared fd offset): workers
        # re-open by path.  In-memory networks fork-inherit for free.
        if network_path is not None and self._network_needs_reopen(network):
            kwargs["network_path"] = network_path
        else:
            kwargs["network"] = network

        if fingerprint is None:
            fingerprint = snap.network_fingerprint(network)
        kwargs["fingerprint"] = fingerprint

        if overlay_path is not None:
            kwargs["overlay_path"] = str(overlay_path)
        if snapshot_path is not None:
            kwargs["estimator"] = "boundary"
            kwargs["snapshot_path"] = str(snapshot_path)
        elif isinstance(estimator, BoundaryNodeEstimator):
            tables = getattr(estimator, "tables", None)
            if tables is not None:
                self._shared = snap.share_tables(tables, fingerprint)
                kwargs["estimator"] = "boundary"
                kwargs["shm_name"] = self._shared.name
            else:
                kwargs["estimator_obj"] = estimator
        elif isinstance(estimator, NaiveEstimator) or estimator_kind == "naive":
            kwargs["estimator"] = "naive"
        elif estimator is not None:
            kwargs["estimator_obj"] = estimator
        elif estimator_kind == "boundary":
            kwargs["estimator"] = "boundary"  # each worker precomputes locally
        return kwargs

    @staticmethod
    def _network_needs_reopen(network) -> bool:
        try:
            from ..storage.ccam import CCAMStore
        except ImportError:  # pragma: no cover
            return False
        return isinstance(network, CCAMStore)

    def _start_worker(self, handle: _ShardHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        boot = WorkerBoot(
            shard_id=handle.shard_id,
            shard_count=self._shards,
            config=self.config,
            fault_plan=self._fault_plan,
            **self._boot_kwargs,
        )
        process = self._ctx.Process(
            target=run_worker,
            args=(boot, child_conn),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        # The parent must not hold the child's pipe end open, or worker
        # death would never surface as EOF on parent_conn.
        child_conn.close()
        try:
            kind, _, payload = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.join(timeout=1.0)
            raise ShardUnavailable(
                handle.shard_id, f"worker died during boot ({exc})"
            ) from exc
        if kind != "ready":
            process.join(timeout=1.0)
            raise ShardUnavailable(
                handle.shard_id,
                f"boot failed: {payload.get('type')}: {payload.get('message')}",
            )
        with handle.lock:
            handle.process = process
            handle.conn = parent_conn
            handle.boot_info = payload
            handle.alive = True
        handle.receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            name=f"repro-shard-recv-{handle.shard_id}",
            daemon=True,
        )
        handle.receiver.start()
        # A restarted worker forked (or re-opened) a network that may
        # predate some broadcast batches; replay the ordered mutation log
        # before it serves queries at a version it never applied.  Holding
        # the update lock keeps a concurrent apply_updates from
        # interleaving mid-replay.  Replay is idempotent (last pattern
        # wins), so a fork that already inherited later patterns converges
        # on the same state and the same version.
        with self._update_lock:
            for wire in self._mutation_log:
                try:
                    self._control(
                        handle, "apply_updates", wire, timeout=120.0
                    )
                except (ShardUnavailable, ReproError):
                    # It died again (the receive loop schedules another
                    # restart) or diverged; either way shard_health shows
                    # the applied-version gap.
                    break

    # ------------------------------------------------------------------
    # receive / restart
    # ------------------------------------------------------------------
    def _receive_loop(self, handle: _ShardHandle) -> None:
        conn = handle.conn
        while True:
            try:
                kind, req_id, payload = conn.recv()
            except (EOFError, OSError):
                break
            with handle.lock:
                waiter = handle.pending.pop(req_id, None)
            if waiter is not None:
                waiter.resolve(kind, payload)
        handle.fail_pending("worker process exited")
        if self._closed:
            return
        self.metrics.inc(
            "shard_deaths_total", labels={"shard_id": str(handle.shard_id)}
        )
        if handle.restarts < self._restart_limit:
            handle.restarts += 1
            threading.Thread(
                target=self._restart_worker,
                args=(handle,),
                name=f"repro-shard-restart-{handle.shard_id}",
                daemon=True,
            ).start()

    def _restart_worker(self, handle: _ShardHandle) -> None:
        try:
            handle.process.join(timeout=5.0)
        except Exception:
            pass
        if self._closed:
            return
        try:
            self._start_worker(handle)
        except (ReproError, OSError):
            return  # stays dead; the ring routes around it
        self.metrics.inc(
            "shard_restarts_total", labels={"shard_id": str(handle.shard_id)}
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_timeout(self, request) -> float:
        deadline = request.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is None:
            return DEFAULT_DISPATCH_TIMEOUT + self._grace
        return deadline + self._grace

    def _send_query(self, handle: _ShardHandle, request) -> tuple[str, object]:
        """One attempt on one shard; ``("down", reason)`` means failover."""
        try:
            req_id, waiter = handle.register()
        except ShardUnavailable as exc:
            return "down", str(exc)
        try:
            with handle.lock:
                conn = handle.conn
            with handle.send_lock:
                conn.send(("query", req_id, request_to_wire(request)))
        except (OSError, ValueError, BrokenPipeError) as exc:
            handle.discard(req_id)
            return "down", f"pipe send failed ({exc})"
        if not waiter.event.wait(self._dispatch_timeout(request)):
            handle.discard(req_id)
            return "down", "no reply within dispatch window"
        return waiter.kind, waiter.payload

    def query(self, request) -> QueryResponse:
        """Answer one request via the ring, failing over as needed."""
        if self._closed:
            raise ServiceClosed("service is closed")
        key = routing_key(request)
        order = self._ring.preference(key)
        skipped: list[int] = []
        last_reason = "no shard available"
        for sid in order:
            handle = self._handles[sid]
            if not handle.alive or not handle.breaker.allow():
                skipped.append(sid)
                last_reason = (
                    "worker is down"
                    if not handle.alive
                    else "circuit breaker open"
                )
                continue
            kind, payload = self._send_query(handle, request)
            if kind == "down":
                handle.breaker.record_failure()
                skipped.append(sid)
                last_reason = str(payload)
                self.metrics.inc(
                    "shard_dispatch_failures_total",
                    labels={"shard_id": str(sid)},
                )
                continue
            handle.breaker.record_success()
            self.metrics.inc(
                "shard_requests_total",
                labels={"shard_id": str(sid), "mode": request.mode},
            )
            if kind == "err":
                # A typed answer ("no path", "timeout", ...) — every
                # shard would say the same; do not fail over.
                raise rebuild_error(payload)
            failed_over = bool(skipped)
            if failed_over:
                for failed_sid in skipped:
                    self.metrics.inc(
                        "shard_failover_total",
                        labels={"shard_id": str(failed_sid)},
                    )
            return QueryResponse(
                result=WireResult(payload["result"]),
                cached=payload["cached"],
                coalesced=payload["coalesced"],
                elapsed_seconds=payload["elapsed_seconds"],
                degraded=payload["degraded"] or failed_over,
                stale=payload["stale"],
                degraded_shard=order[0] if failed_over else None,
                version=payload.get("version", -1),
            )
        raise ShardUnavailable(order[0], last_reason)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _control(
        self, handle: _ShardHandle, op: str, arg=None, timeout: float = 10.0
    ):
        req_id, waiter = handle.register()
        try:
            with handle.lock:
                conn = handle.conn
            with handle.send_lock:
                conn.send(("control", req_id, op, arg))
        except (OSError, ValueError, BrokenPipeError) as exc:
            handle.discard(req_id)
            raise ShardUnavailable(
                handle.shard_id, f"pipe send failed ({exc})"
            ) from exc
        if not waiter.event.wait(timeout):
            handle.discard(req_id)
            raise ShardUnavailable(handle.shard_id, f"{op} timed out")
        if waiter.kind == "ok":
            return waiter.payload
        if waiter.kind == "down":
            raise ShardUnavailable(handle.shard_id, str(waiter.payload))
        raise rebuild_error(waiter.payload)

    def _broadcast(self, op: str, arg=None, timeout: float = 10.0) -> dict:
        """``{shard_id: reply-or-None}`` — dead shards yield ``None``."""
        replies: dict[int, object] = {}
        for sid, handle in self._handles.items():
            if not handle.alive:
                replies[sid] = None
                continue
            try:
                replies[sid] = self._control(handle, op, arg, timeout)
            except ShardUnavailable:
                replies[sid] = None
        return replies

    # ------------------------------------------------------------------
    # service surface (mirrors AllFPService)
    # ------------------------------------------------------------------
    @property
    def network(self):
        return self._network

    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def version(self) -> int:
        return self._version

    @property
    def net_version(self) -> int:
        """Applied network version: update batches broadcast by the tier."""
        return self._net_version

    @property
    def pending_updates(self) -> int:
        """Update batches accepted and not yet applied on every live shard."""
        with self._pending_lock:
            return len(self._pending_updates)

    def staleness_seconds(self) -> float:
        """Age of the oldest accepted-but-unapplied update batch (0 if none)."""
        with self._pending_lock:
            if not self._pending_updates:
                return 0.0
            return max(0.0, time.monotonic() - self._pending_updates[0])

    def apply_updates(self, batch: MutationBatch, workers=None) -> int:
        """Broadcast one live-update batch to every shard; returns the new
        tier-wide network version.

        The batch is validated once against the router's network copy
        (typed errors, nothing broadcast on failure), stamped with the next
        monotonic version, applied to the router copy (so restart forks
        inherit it and later batches validate against current patterns),
        appended to the replay log, then sent to each live worker, which
        delta re-customizes under its own update lock.  A shard that is
        down catches up from the log when it restarts; a shard whose apply
        *fails* is killed so the restart-and-replay path resynchronises it
        rather than leaving it silently serving a diverged network.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        validate_batch(self._network, batch)
        accepted_at = time.monotonic()
        with self._pending_lock:
            self._pending_updates.append(accepted_at)
        try:
            with self._update_lock:
                new_version = self._net_version + 1
                wire = {"batch": batch.to_wire(), "version": new_version}
                apply_batch(self._network, batch)
                self._mutation_log.append(wire)
                self._net_version = new_version
                for sid, handle in self._handles.items():
                    if not handle.alive:
                        continue
                    try:
                        self._control(
                            handle, "apply_updates", wire, timeout=120.0
                        )
                    except ShardUnavailable:
                        continue  # restart replay catches it up
                    except ReproError:
                        self.metrics.inc(
                            "shard_update_failures_total",
                            labels={"shard_id": str(sid)},
                        )
                        self.kill_shard(sid)
                self._version += 1
                self._update_batches_applied += 1
                self._update_mutations_applied += len(batch)
                self.metrics.inc(
                    "updates_applied_total",
                    help="Live-update batches broadcast by the tier",
                )
                self.metrics.inc(
                    "update_mutations_total",
                    len(batch),
                    help="Edge-pattern mutations broadcast across batches",
                )
                return new_version
        finally:
            lag = time.monotonic() - accepted_at
            with self._pending_lock:
                self._pending_updates.remove(accepted_at)
                if lag > self._max_staleness_observed:
                    self._max_staleness_observed = lag

    @property
    def degraded(self) -> bool:
        """Degraded when any shard is down, restarted-degraded, or its
        breaker is not closed — mirrors the single-service semantics."""
        for handle in self._handles.values():
            if not handle.alive:
                return True
            if handle.boot_info.get("degraded"):
                return True
            if handle.breaker.state != "closed":
                return True
        return False

    def shard_health(self) -> list[dict]:
        """Per-shard state for ``/healthz`` aggregation."""
        health = []
        for sid, handle in sorted(self._handles.items()):
            entry = {
                "shard_id": sid,
                "alive": handle.alive,
                "breaker": handle.breaker.state,
                "restarts": handle.restarts,
                "pid": handle.boot_info.get("pid"),
                "tables_mode": handle.boot_info.get("tables_mode"),
                "overlay_mode": handle.boot_info.get("overlay_mode", "none"),
            }
            if handle.alive:
                try:
                    entry.update(self._control(handle, "healthz", timeout=5.0))
                except (ShardUnavailable, ReproError):
                    entry["alive"] = False
                    entry["status"] = "down"
            else:
                entry["status"] = "down"
            health.append(entry)
        return health

    def meminfo(self) -> dict:
        """Per-shard private-RSS and table-transport info (benchmarks)."""
        return self._broadcast("meminfo")

    def invalidate(self, refresh_estimator: bool = False) -> int:
        replies = self._broadcast("invalidate", refresh_estimator)
        dropped = 0
        for reply in replies.values():
            if reply is not None:
                dropped += reply["dropped"]
                self._version = max(self._version, reply["version"])
        return dropped

    def install_faults(self, plan) -> None:
        """Broadcast a fault plan to every live worker (chaos harness)."""
        self._broadcast("install_faults", plan.as_dict())

    def uninstall_faults(self) -> dict:
        """Remove worker-side fault plans; ``{shard_id: {"fired": n}}``."""
        return self._broadcast("uninstall_faults")

    def stats(self) -> dict:
        shard_stats = self._broadcast("stats")
        return {
            "shards": self._shards,
            "alive": sum(1 for h in self._handles.values() if h.alive),
            "restarts": {
                sid: h.restarts for sid, h in self._handles.items()
            },
            "updates": {
                "applied_version": self._net_version,
                "batches_applied": self._update_batches_applied,
                "mutations_applied": self._update_mutations_applied,
                "pending": self.pending_updates,
                "staleness_seconds": self.staleness_seconds(),
                "max_staleness_seconds": self._max_staleness_observed,
            },
            "per_shard": shard_stats,
        }

    def render_metrics(self) -> str:
        """Tier router metrics plus every live shard's exposition.

        Worker samples already carry ``shard_id``/``shard_count`` const
        labels, so the concatenated text has no colliding series.
        """
        parts = [self.metrics.render()]
        for reply in self._broadcast("metrics", timeout=5.0).values():
            if reply is not None:
                parts.append(reply["text"])
        return "\n".join(p for p in parts if p)

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one worker (tests and the chaos harness)."""
        handle = self._handles[shard_id]
        process = handle.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for handle in getattr(self, "_handles", {}).values():
            if handle.alive:
                try:
                    self._control(handle, "close", timeout=2.0)
                except (ShardUnavailable, ReproError):
                    pass
        for handle in getattr(self, "_handles", {}).values():
            process = handle.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            handle.fail_pending("service closed")
            conn = handle.conn
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
