"""repro.serve — the concurrent allFP query service (system S13).

Wraps :class:`~repro.core.engine.IntAllFastestPaths` in a production-shaped
service: a bounded worker pool over one warm shared edge-function cache,
request coalescing and TTL+LRU result caching, admission control with
deadlines, a Prometheus-style ``/metrics`` endpoint, and a stdlib-only
JSON/HTTP API.  See ``docs/serving.md``.
"""

from .admission import AdmissionController, Deadline
from .batching import ResultCache, SingleFlight
from .chaos import ChaosReport, default_fault_plan, run_chaos, run_shard_chaos
from .client import (
    HTTPClient,
    InProcessClient,
    LoadReport,
    percentile,
    run_closed_loop,
    run_open_loop,
)
from .http import ServeServer, make_server, start_in_thread
from .metrics import MetricsRegistry, parse_metrics
from .service import (
    MODES,
    AllFPService,
    QueryRequest,
    QueryResponse,
    ServiceConfig,
    clone_estimator,
)

__all__ = [
    "MODES",
    "AllFPService",
    "ServiceConfig",
    "QueryRequest",
    "QueryResponse",
    "clone_estimator",
    "AdmissionController",
    "Deadline",
    "ResultCache",
    "SingleFlight",
    "MetricsRegistry",
    "parse_metrics",
    "ServeServer",
    "make_server",
    "start_in_thread",
    "InProcessClient",
    "HTTPClient",
    "LoadReport",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
    "ChaosReport",
    "default_fault_plan",
    "run_chaos",
    "run_shard_chaos",
]
