"""Clients and load generation for the query service.

:class:`InProcessClient` talks straight to an :class:`AllFPService` (tests,
benchmarks — no socket overhead); :class:`HTTPClient` speaks the JSON API
via :mod:`urllib` (smoke tests, the CLI's remote mode).

Two load-generation shapes, both returning a :class:`LoadReport`:

* :func:`run_closed_loop` — ``clients`` threads, each issuing its share of
  queries back-to-back; measures the service at saturation.
* :func:`run_open_loop` — queries fired on a precomputed arrival schedule
  (see :func:`repro.workloads.poisson_arrivals`) independent of response
  times, so queueing delay shows up in the tail instead of throttling the
  offered load (the coordinated-omission trap).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..exceptions import ReproError, ServeClientError
from ..timeutil import TimeInterval
from ..workloads.queries import QuerySpec
from .service import AllFPService, QueryRequest, QueryResponse


class InProcessClient:
    """Thin wrapper presenting the client interface over a local service."""

    def __init__(self, service: AllFPService) -> None:
        self._service = service

    def query(
        self, spec: QuerySpec, mode: str = "allfp", deadline: float | None = None
    ) -> QueryResponse:
        return self._service.query(
            QueryRequest(spec.source, spec.target, spec.interval, mode, deadline)
        )

    def batch(
        self,
        pairs: Sequence[tuple[int, int]],
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        return self._service.batch(pairs, interval, deadline)


class HTTPClient:
    """Stdlib client for the JSON API with retries and typed failures.

    Transport-level failures (connection refused/reset, DNS, socket
    timeouts) and — optionally — HTTP 503 overload responses are retried
    up to ``retries`` times with exponential backoff and **full jitter**
    (``uniform(0, min(cap, base * 2^attempt))``), honouring the server's
    ``Retry-After`` header on 503.  When the budget runs out, the raw
    ``urllib``/``socket`` error is wrapped in a typed
    :class:`~repro.exceptions.ServeClientError` carrying the URL and the
    attempt count, so callers (and the CLI) never see a raw traceback.

    ``sleep`` and ``rng`` are injectable so tests can pin the backoff
    schedule deterministically.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_503: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_503 = retry_503
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    def _backoff(self, attempt: int, retry_after: float | None = None) -> None:
        if retry_after is not None and retry_after >= 0:
            self._sleep(retry_after)
            return
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        self._sleep(self._rng.uniform(0.0, ceiling))

    def _request(self, req: urllib.request.Request) -> tuple[int, bytes, dict]:
        """Send with retries; returns ``(status, body, headers)``.

        4xx/5xx come back as statuses (after 503 retries are spent), not
        exceptions; only transport failures raise ``ServeClientError``.
        """
        url = req.full_url
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return resp.status, resp.read(), dict(resp.headers)
            except urllib.error.HTTPError as exc:
                body = exc.read()
                if (
                    exc.code == 503
                    and self.retry_503
                    and attempt < self.retries
                ):
                    retry_after = None
                    header = exc.headers.get("Retry-After")
                    if header is not None:
                        try:
                            retry_after = float(header)
                        except ValueError:
                            retry_after = None
                    self._backoff(attempt, retry_after)
                    attempt += 1
                    continue
                return exc.code, body, dict(exc.headers)
            except OSError as exc:
                # URLError subclasses OSError, so this covers connection
                # refused/reset, DNS failures, and socket timeouts alike.
                if attempt < self.retries:
                    self._backoff(attempt)
                    attempt += 1
                    continue
                raise ServeClientError(
                    f"request failed: {exc}", url=url, attempts=attempt + 1
                ) from exc

    def _decode(self, status: int, body: bytes, url: str) -> dict:
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError:
            if status == 200:
                raise ServeClientError(
                    "server returned 200 with an unparseable body", url=url
                ) from None
            decoded = {
                "error": "HTTPError",
                "message": body.decode(errors="replace"),
            }
        return decoded

    def _get(self, path: str) -> tuple[int, bytes]:
        req = urllib.request.Request(self.base_url + path, method="GET")
        status, body, _headers = self._request(req)
        return status, body

    def post(self, path: str, body: dict) -> tuple[int, dict]:
        """POST JSON; returns ``(status, decoded_body)`` without raising on 4xx/5xx."""
        req = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        status, payload, _headers = self._request(req)
        return status, self._decode(status, payload, req.full_url)

    def healthz(self) -> dict:
        status, body = self._get("/healthz")
        if status != 200:
            raise ReproError(f"healthz returned HTTP {status}")
        return json.loads(body)

    def metrics_text(self) -> str:
        status, body = self._get("/metrics")
        if status != 200:
            raise ReproError(f"metrics returned HTTP {status}")
        return body.decode()

    def query(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        mode: str = "allfp",
        deadline: float | None = None,
        max_staleness: float | None = None,
    ) -> tuple[int, dict]:
        body: dict = {
            "source": source,
            "target": target,
            "start": interval.start,
            "end": interval.end,
        }
        if deadline is not None:
            body["deadline"] = deadline
        if max_staleness is not None:
            body["max_staleness"] = max_staleness
        return self.post(f"/v1/{mode}", body)

    def profile(
        self,
        source: int,
        targets: Sequence[int],
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        body: dict = {
            "source": source,
            "targets": list(targets),
            "start": interval.start,
            "end": interval.end,
        }
        if deadline is not None:
            body["deadline"] = deadline
        return self.post("/v1/profile", body)

    def knn(
        self,
        source: int,
        candidates: Sequence[int],
        k: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        body: dict = {
            "source": source,
            "candidates": list(candidates),
            "k": k,
            "start": interval.start,
            "end": interval.end,
        }
        if deadline is not None:
            body["deadline"] = deadline
        return self.post("/v1/knn", body)

    def batch(
        self,
        pairs: Sequence[tuple[int, int]],
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        body: dict = {
            "items": [
                {"source": int(s), "target": int(t)} for s, t in pairs
            ],
            "start": interval.start,
            "end": interval.end,
        }
        if deadline is not None:
            body["deadline"] = deadline
        return self.post("/v1/batch", body)

    def batch_one_to_many(
        self,
        source: int,
        targets: Sequence[int],
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        body: dict = {
            "source": source,
            "targets": list(targets),
            "start": interval.start,
            "end": interval.end,
        }
        if deadline is not None:
            body["deadline"] = deadline
        return self.post("/v1/batch", body)

    def updates(self, batch) -> tuple[int, dict]:
        """POST a live-update batch to ``/v1/updates``.

        Accepts a :class:`~repro.serve.updates.MutationBatch` (or anything
        with ``to_wire()``) or an already-wire ``{"mutations": [...]}``
        dict; returns ``(status, decoded_body)`` like :meth:`post`.
        """
        wire = batch.to_wire() if hasattr(batch, "to_wire") else batch
        return self.post("/v1/updates", wire)


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of pre-sorted data, ``p`` in [0, 100]."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    latencies_s: list[float] = field(default_factory=list)
    errors: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.latencies_s) + sum(self.errors.values())

    @property
    def successes(self) -> int:
        return len(self.latencies_s)

    @property
    def throughput_qps(self) -> float:
        return self.successes / self.wall_seconds if self.wall_seconds else 0.0

    def latency_ms(self, p: float) -> float:
        return percentile(sorted(self.latencies_s), p) * 1e3

    def as_dict(self) -> dict:
        base = {
            "requests": self.requests,
            "successes": self.successes,
            "errors": dict(self.errors),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
        }
        if self.latencies_s:
            base.update(
                p50_ms=self.latency_ms(50),
                p95_ms=self.latency_ms(95),
                p99_ms=self.latency_ms(99),
            )
        return base


QueryFn = Callable[[QuerySpec], object]


def _call_recording(
    query_fn: QueryFn, spec: QuerySpec, report: LoadReport, lock: threading.Lock
) -> None:
    started = time.monotonic()
    try:
        query_fn(spec)
    except Exception as exc:  # noqa: BLE001 — load gen records, never raises
        with lock:
            report.errors[type(exc).__name__] = (
                report.errors.get(type(exc).__name__, 0) + 1
            )
    else:
        elapsed = time.monotonic() - started
        with lock:
            report.latencies_s.append(elapsed)


def run_closed_loop(
    query_fn: QueryFn, queries: Sequence[QuerySpec], clients: int = 1
) -> LoadReport:
    """Split ``queries`` round-robin over ``clients`` back-to-back threads."""
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    report = LoadReport()
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for spec in queries[offset::clients]:
            _call_recording(query_fn, spec, report, lock)

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_seconds = time.monotonic() - started
    return report


def run_open_loop(
    query_fn: QueryFn,
    queries: Sequence[QuerySpec],
    arrivals_s: Sequence[float],
) -> LoadReport:
    """Fire one query per arrival offset (seconds), round-robin over ``queries``.

    Each arrival gets its own thread so a slow response never delays later
    arrivals — the offered rate is exactly the schedule's.
    """
    if not queries:
        raise ValueError("no queries")
    report = LoadReport()
    lock = threading.Lock()
    started = time.monotonic()
    threads: list[threading.Thread] = []
    for i, offset in enumerate(arrivals_s):
        delay = started + offset - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        spec = queries[i % len(queries)]
        t = threading.Thread(
            target=_call_recording,
            args=(query_fn, spec, report, lock),
            daemon=True,
        )
        t.start()
        threads.append(t)
    for t in threads:
        t.join()
    report.wall_seconds = time.monotonic() - started
    return report
