"""Request coalescing and result caching for the query service.

Two independent layers, both keyed on the full query identity
``(source, target, interval, mode, version)``:

* :class:`SingleFlight` — at most one *in-flight* computation per key.
  The first caller becomes the **leader** and runs the computation;
  concurrent duplicates become **followers** that block on the leader's
  future and share its outcome (including exceptions).  This is the
  classic single-flight map (cf. Go's ``golang.org/x/sync/singleflight``).
* :class:`ResultCache` — a TTL + LRU cache of *completed* results, so
  repeats that arrive after the leader finished are served without any
  engine work at all.

The version stamp in the key makes invalidation trivial: bumping the
service version (e.g. after a live pattern update) orphans every old
entry, and the LRU bound ages them out.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Hashable

Key = Hashable


class SingleFlight:
    """Deduplicate concurrent identical computations.

    ``do(key, fn)`` returns ``(value, leader)`` where ``leader`` tells the
    caller whether it executed ``fn`` itself (and should e.g. populate the
    result cache) or inherited another caller's outcome.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Key, Future] = {}
        self.leaders = 0
        self.coalesced = 0

    def do(self, key: Key, fn: Callable[[], Any]) -> tuple[Any, bool]:
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.coalesced += 1
            else:
                self.leaders += 1
                self._inflight[key] = Future()
        if existing is not None:
            return existing.result(), False
        future = self._inflight[key]
        try:
            value = fn()
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            future.set_result(value)
            return value, True
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "leaders": self.leaders,
                "coalesced": self.coalesced,
            }


class ResultCache:
    """TTL + LRU cache of completed query results.

    ``max_entries`` bounds memory; ``ttl`` (seconds) bounds staleness — a
    pattern-update-aware service additionally bumps its version stamp out
    of the key, but the TTL protects even same-version entries from
    serving forever.  ``clock`` is injectable so tests control expiry
    deterministically.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self._lock = threading.Lock()
        self._entries: OrderedDict[Key, tuple[float, Any]] = OrderedDict()
        self._max_entries = max_entries
        self._ttl = ttl
        self._clock = clock
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Key) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value = entry
            if self._clock() - stored_at >= self._ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Key, value: Any) -> None:
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
