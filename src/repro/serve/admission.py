"""Admission control: bounded pending work and per-query deadlines.

The service admits at most ``max_pending`` requests at a time (in a worker,
queued for one, or waiting on a coalesced leader).  Beyond that it
**fast-fails** with :class:`~repro.exceptions.ServiceOverloaded` instead of
queueing unboundedly — an overloaded service that answers "retry later" in
microseconds degrades gracefully; one that buffers every request melts.

:class:`Deadline` carries a wall-clock budget from the moment of admission
through queueing into the engine, so time spent waiting for a worker counts
against the query, not just time spent searching.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..exceptions import ServiceOverloaded


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock cutoff on the ``clock`` timeline."""

    at: float
    budget: float
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after(
        cls, budget: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``budget`` seconds from now."""
        return cls(at=clock() + budget, budget=budget, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


class AdmissionController:
    """Counting gate in front of the worker pool.

    ``try_acquire`` / ``release`` bracket each admitted request;
    ``pending`` is the live depth exported as the queue-depth gauge.
    """

    def __init__(self, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._lock = threading.Lock()
        self._max_pending = max_pending
        self._pending = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def max_pending(self) -> int:
        return self._max_pending

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def try_acquire(self) -> None:
        """Admit one request or raise :class:`ServiceOverloaded` immediately."""
        with self._lock:
            if self._pending >= self._max_pending:
                self.rejected += 1
                raise ServiceOverloaded(self._pending, self._max_pending)
            self._pending += 1
            self.admitted += 1

    def release(self) -> None:
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError("release() without matching try_acquire()")
            self._pending -= 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self._max_pending,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }
