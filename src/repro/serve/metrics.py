"""Prometheus-style metrics registry for the query service.

A tiny, dependency-free subset of the Prometheus data model: monotonically
increasing **counters**, point-in-time **gauges** (static values or zero-arg
callables sampled at render time), and fixed-bucket **histograms**.  All
three support key/value labels, and :meth:`MetricsRegistry.render` emits
the text exposition format served on ``GET /metrics``.

Everything is guarded by one registry lock — metric updates are a few
dict operations, so a single lock is cheaper than per-metric locks and
makes ``render`` a consistent snapshot.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping, Sequence

#: Default latency buckets (seconds) — tuned for sub-second pure-Python
#: queries with a tail into tens of seconds.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

Labels = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: Labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Histogram:
    __slots__ = ("bounds", "buckets", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # last bucket is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges and histograms with Prometheus text rendering."""

    def __init__(
        self,
        namespace: str = "repro",
        const_labels: Mapping[str, str] | None = None,
    ) -> None:
        self._namespace = namespace
        #: Labels stamped onto every rendered sample (kernel backend, shard
        #: identity, ...).  They are a render-time concern only: lookup
        #: methods (``counter_value`` et al.) keep keying on the per-call
        #: labels, so instrumented code never has to know about them.
        self._const_labels = _labels_key(const_labels)
        self._lock = threading.Lock()
        self._counters: dict[str, dict[Labels, float]] = {}
        self._gauges: dict[str, float | Callable[[], float]] = {}
        self._histograms: dict[str, dict[Labels, _Histogram]] = {}
        self._histogram_bounds: dict[str, tuple[float, ...]] = {}
        self._help: dict[str, str] = {}

    def _describe(self, name: str, help_text: str | None) -> None:
        if help_text and name not in self._help:
            self._help[name] = help_text

    # ------------------------------------------------------------------
    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, str] | None = None,
        help: str | None = None,
    ) -> None:
        """Increment counter ``name`` (created on first use)."""
        key = _labels_key(labels)
        with self._lock:
            self._describe(name, help)
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current value of one counter series (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(_labels_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    # ------------------------------------------------------------------
    def set_gauge(
        self,
        name: str,
        value: float | Callable[[], float],
        help: str | None = None,
    ) -> None:
        """Set a gauge to a value, or register a callable sampled at render."""
        with self._lock:
            self._describe(name, help)
            self._gauges[name] = value

    def gauge_value(self, name: str) -> float:
        with self._lock:
            value = self._gauges[name]
        return float(value() if callable(value) else value)

    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        help: str | None = None,
    ) -> None:
        """Record one observation into histogram ``name``."""
        key = _labels_key(labels)
        with self._lock:
            self._describe(name, help)
            self._histogram_bounds.setdefault(name, tuple(buckets))
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Histogram(self._histogram_bounds[name])
            hist.observe(value)

    def histogram_count(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> int:
        with self._lock:
            hist = self._histograms.get(name, {}).get(_labels_key(labels))
            return hist.count if hist else 0

    # ------------------------------------------------------------------
    def _merged(self, labels: Labels) -> Labels:
        """Per-sample labels with the const labels spliced in (sorted;
        per-sample wins on a key collision)."""
        if not self._const_labels:
            return labels
        merged = dict(self._const_labels)
        merged.update(labels)
        return tuple(sorted(merged.items()))

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        with self._lock:
            lines: list[str] = []
            ns = self._namespace

            def emit_header(name: str, kind: str) -> None:
                help_text = self._help.get(name)
                if help_text:
                    lines.append(f"# HELP {ns}_{name} {help_text}")
                lines.append(f"# TYPE {ns}_{name} {kind}")

            for name in sorted(self._counters):
                emit_header(name, "counter")
                for labels, value in sorted(self._counters[name].items()):
                    lines.append(
                        f"{ns}_{name}{_format_labels(self._merged(labels))} "
                        f"{_format_value(value)}"
                    )
            for name in sorted(self._gauges):
                emit_header(name, "gauge")
                value = self._gauges[name]
                sampled = float(value() if callable(value) else value)
                lines.append(
                    f"{ns}_{name}{_format_labels(self._merged(()))} "
                    f"{_format_value(sampled)}"
                )
            for name in sorted(self._histograms):
                emit_header(name, "histogram")
                for labels, hist in sorted(self._histograms[name].items()):
                    merged = self._merged(labels)
                    cumulative = 0
                    for bound, count in zip(
                        hist.bounds + (float("inf"),), hist.buckets
                    ):
                        cumulative += count
                        le = _format_labels(
                            merged, f'le="{_format_value(bound)}"'
                        )
                        lines.append(f"{ns}_{name}_bucket{le} {cumulative}")
                    suffix = _format_labels(merged)
                    lines.append(
                        f"{ns}_{name}_sum{suffix} {repr(hist.total)}"
                    )
                    lines.append(f"{ns}_{name}_count{suffix} {hist.count}")
            return "\n".join(lines) + "\n"


def parse_metrics(text: str) -> dict[str, float]:
    """Parse a rendered exposition back into ``{sample_name: value}``.

    Sample names keep their label block verbatim (sorted at render time, so
    lookups are deterministic).  Used by the smoke scripts and tests to
    reconcile scraped counters with client-side observations.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float("inf") if value == "+Inf" else float(value)
    return samples
