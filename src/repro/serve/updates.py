"""Live edge-pattern mutation stream: wire formats, validation, traces.

The online update path (`POST /v1/updates`, ``repro-allfp replay-updates``,
shard broadcast) moves batches of **edge-pattern mutations**: an existing
edge gets a new CapeCod speed pattern.  Topology never changes on this
path — endpoints, distances, and road classes stay fixed — so the grid
partitions, boundary-node sets, and overlay cell structure built at boot
remain valid and only travel-time functions need re-customization.

Wire format (one mutation)::

    {"source": 12, "target": 13,
     "pattern": {"workday": [[0, 0.5], [420, 0.1], [540, 0.5]],
                 "non-workday": [[0, 0.5]]}}

A batch is ``{"mutations": [...]}``; an incident-trace file is JSON Lines,
one event per line: ``{"at": <seconds offset>, "mutations": [...]}``.

Malformed shapes raise :class:`~repro.exceptions.QueryError` (HTTP 400),
unknown edges :class:`~repro.exceptions.EdgeNotFoundError` (HTTP 404),
calendar-coverage gaps :class:`~repro.exceptions.NetworkError` — all
typed, all before any mutation is applied (a batch is all-or-nothing).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..exceptions import NetworkError, PatternError, QueryError
from ..patterns.speed import CapeCodPattern, DailySpeedPattern

MAX_MUTATIONS_PER_BATCH = 1024


def pattern_to_wire(pattern: CapeCodPattern) -> dict:
    """JSON-safe form: ``{category: [[start_minute, speed_mpm], ...]}``."""
    return {
        category: [[start, speed] for start, speed in pattern.daily(category).pieces]
        for category in pattern.categories
    }


def pattern_from_wire(doc: object) -> CapeCodPattern:
    """Parse the wire form back into a pattern, typed errors throughout."""
    if not isinstance(doc, dict) or not doc:
        raise QueryError("pattern must be a non-empty {category: pieces} object")
    by_category = {}
    for category, pieces in doc.items():
        if not isinstance(category, str):
            raise QueryError(f"pattern category must be a string, got {category!r}")
        if not isinstance(pieces, list) or not pieces:
            raise QueryError(
                f"pattern category {category!r} must list [start, speed] pairs"
            )
        parsed = []
        for piece in pieces:
            if (
                not isinstance(piece, (list, tuple))
                or len(piece) != 2
                or isinstance(piece[0], bool)
                or isinstance(piece[1], bool)
                or not isinstance(piece[0], (int, float))
                or not isinstance(piece[1], (int, float))
            ):
                raise QueryError(
                    f"pattern category {category!r}: each piece must be "
                    f"[start_minute, speed_mpm], got {piece!r}"
                )
            parsed.append((float(piece[0]), float(piece[1])))
        try:
            by_category[category] = DailySpeedPattern(parsed)
        except PatternError as exc:
            raise QueryError(
                f"pattern category {category!r} is malformed: {exc}"
            ) from exc
    return CapeCodPattern(by_category)


@dataclass(frozen=True)
class EdgeMutation:
    """One timestamped edge-pattern mutation."""

    source: int
    target: int
    pattern: CapeCodPattern

    def to_wire(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "pattern": pattern_to_wire(self.pattern),
        }

    @classmethod
    def from_wire(cls, doc: object) -> "EdgeMutation":
        if not isinstance(doc, dict):
            raise QueryError(f"mutation must be an object, got {type(doc).__name__}")
        for field in ("source", "target"):
            value = doc.get(field)
            if isinstance(value, bool) or not isinstance(value, int):
                raise QueryError(f"mutation {field!r} must be an integer node id")
        if "pattern" not in doc:
            raise QueryError("mutation is missing its 'pattern'")
        return cls(doc["source"], doc["target"], pattern_from_wire(doc["pattern"]))


@dataclass(frozen=True)
class MutationBatch:
    """An ordered batch of mutations, applied atomically at one version."""

    mutations: tuple[EdgeMutation, ...]

    def __len__(self) -> int:
        return len(self.mutations)

    def to_wire(self) -> dict:
        return {"mutations": [m.to_wire() for m in self.mutations]}

    @classmethod
    def from_wire(cls, doc: object) -> "MutationBatch":
        if not isinstance(doc, dict):
            raise QueryError("update body must be a JSON object")
        raw = doc.get("mutations")
        if not isinstance(raw, list) or not raw:
            raise QueryError("update body needs a non-empty 'mutations' list")
        if len(raw) > MAX_MUTATIONS_PER_BATCH:
            raise QueryError(
                f"batch of {len(raw)} mutations exceeds the limit of "
                f"{MAX_MUTATIONS_PER_BATCH}"
            )
        return cls(tuple(EdgeMutation.from_wire(m) for m in raw))


@dataclass(frozen=True)
class AppliedMutation:
    """Record of one applied mutation, enough for delta re-customization."""

    source: int
    target: int
    distance: float
    old_pattern: CapeCodPattern
    new_pattern: CapeCodPattern


def validate_batch(network, batch: MutationBatch) -> None:
    """Check every mutation against the network before touching anything.

    Unknown edges raise :class:`EdgeNotFoundError`; patterns that do not
    cover the network calendar raise :class:`NetworkError`.  A batch that
    fails here leaves the network byte-identical.
    """
    categories = network.calendar.categories
    for mutation in batch.mutations:
        network.find_edge(mutation.source, mutation.target)
        if not mutation.pattern.covers(categories):
            raise NetworkError(
                f"mutation {mutation.source}->{mutation.target}: pattern "
                f"categories {mutation.pattern.categories} do not cover the "
                f"network calendar"
            )


def apply_batch(network, batch: MutationBatch) -> list[AppliedMutation]:
    """Validate then apply a batch; returns the applied-mutation records.

    Works against both the in-memory :class:`CapeCodNetwork` and a
    writable :class:`CCAMStore` (both expose ``update_edge_pattern``).
    """
    validate_batch(network, batch)
    applied = []
    for mutation in batch.mutations:
        old = network.find_edge(mutation.source, mutation.target)
        network.update_edge_pattern(mutation.source, mutation.target, mutation.pattern)
        applied.append(
            AppliedMutation(
                mutation.source,
                mutation.target,
                old.distance,
                old.pattern,
                mutation.pattern,
            )
        )
    return applied


# ----------------------------------------------------------------------
# Incident traces (JSON Lines, one timestamped batch per line)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceEvent:
    """One trace line: a batch scheduled ``at`` seconds into the replay."""

    at: float
    batch: MutationBatch


def load_trace(path) -> list[TraceEvent]:
    """Parse an incident-trace file; events come back sorted by offset."""
    events = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise QueryError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise QueryError(f"{path}:{lineno}: each line must be an object")
        at = doc.get("at", 0.0)
        if isinstance(at, bool) or not isinstance(at, (int, float)) or at < 0:
            raise QueryError(f"{path}:{lineno}: 'at' must be seconds >= 0")
        try:
            batch = MutationBatch.from_wire(doc)
        except QueryError as exc:
            raise QueryError(f"{path}:{lineno}: {exc}") from exc
        events.append(TraceEvent(float(at), batch))
    if not events:
        raise QueryError(f"{path}: trace holds no events")
    events.sort(key=lambda e: e.at)
    return events


def dump_trace(events: Sequence[TraceEvent], path) -> None:
    lines = [
        json.dumps({"at": event.at, **event.batch.to_wire()}, sort_keys=True)
        for event in events
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def slowdown_pattern(pattern: CapeCodPattern, factor: float) -> CapeCodPattern:
    """A copy of ``pattern`` with every speed scaled by ``factor`` > 0.

    The canonical incident generator: ``factor=0.25`` models a lane
    closure, ``factor>1`` the recovery.  Piece boundaries are preserved.
    """
    if factor <= 0:
        raise QueryError(f"slowdown factor must be > 0, got {factor:g}")
    return CapeCodPattern(
        {
            category: DailySpeedPattern(
                [
                    (start, speed * factor)
                    for start, speed in pattern.daily(category).pieces
                ]
            )
            for category in pattern.categories
        }
    )


class ReadWriteLock:
    """Many readers or one writer, writer-preferring.

    Queries hold the read side while they compute so every answer is
    produced against exactly one network version; ``apply_updates`` holds
    the write side.  A waiting writer blocks new readers, so a steady
    query stream cannot starve the mutation feed.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()
