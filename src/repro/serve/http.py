"""Stdlib-only JSON/HTTP front-end for :class:`~repro.serve.service.AllFPService`.

Endpoints
---------
``POST /v1/allfp`` and ``POST /v1/singlefp``
    JSON body::

        {"source": 0, "target": 99,
         "from": "7:00", "to": "9:00", "day": 0,     # clock strings, or
         "start": 420.0, "end": 540.0,               # absolute minutes
         "deadline": 5.0}                            # optional, seconds

    200 response: ``{"result": <result.as_dict()>, "cached": bool,
    "coalesced": bool, "elapsed_ms": float}``.

``POST /v1/profile``
    Earliest-arrival functions from ``source`` to an explicit, bounded
    ``targets`` list (one-to-all over HTTP is unbounded output, so the
    list is required; at most ``MAX_PROFILE_TARGETS`` entries)::

        {"source": 0, "targets": [3, 4, 5], "start": 420.0, "end": 540.0}

``POST /v1/knn``
    Time-interval k-nearest-neighbour ranking over ``candidates``::

        {"source": 0, "candidates": [3, 4, 5], "k": 2,
         "start": 420.0, "end": 540.0}

``POST /v1/batch``
    Many fastest-time queries answered as one admitted request (at most
    ``MAX_BATCH_ITEMS``; answers come back per item, in input order).
    Either explicit pairs or the one-to-many shorthand::

        {"items": [{"source": 0, "target": 9}, {"source": 3, "target": 7}],
         "start": 420.0, "end": 540.0}
        {"source": 0, "targets": [7, 8, 9], "start": 420.0, "end": 540.0}

``POST /v1/updates``
    The live-traffic mutation feed: a batch of edge-pattern mutations
    applied atomically at one network version (see
    :mod:`repro.serve.updates` for the wire format)::

        {"mutations": [{"source": 0, "target": 1,
                        "pattern": {"workday": [[0, 0.5], [420, 0.1]],
                                    "non-workday": [[0, 0.5]]}}]}

    200 response: ``{"version": <new network version>, "applied": N,
    "staleness_seconds": float}``.  Unknown edges → 404, malformed
    patterns → 400, calendar-coverage gaps → 404; a failed batch applies
    nothing.

``GET /healthz``
    ``{"status": "ok", "version": <stamp>, "network_version": <applied>,
    "staleness_seconds": float, "pending_updates": N, "nodes": N}`` —
    cheap liveness plus the bounded-staleness triple.

``GET /metrics``
    Prometheus text exposition from the service's metrics registry.

Query bodies may carry ``max_staleness`` (seconds): when the service is
further behind the accepted update stream than that, the query is refused
with 503 + ``Retry-After`` instead of answered against old data.

Error mapping: malformed input → 400, unknown node → 404, no path → 404,
admission rejection → 503 (with ``Retry-After``), staleness bound
exceeded → 503 (with ``Retry-After``), deadline → 504.  Every error body
is ``{"error": <class>, "message": <str>}``.

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection, so slow queries never block ``/healthz`` or ``/metrics`` —
actual compute concurrency stays bounded by the service's worker pool and
admission control, not by socket count.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.engine import QueryTimeout
from ..exceptions import (
    NetworkError,
    NoPathError,
    QueryError,
    ReproError,
    ServiceOverloaded,
    ShardUnavailable,
    StalenessExceeded,
)
from .. import reliability
from ..timeutil import TimeInterval, parse_clock
from .service import AllFPService, QueryRequest
from .updates import MutationBatch

#: Maximum accepted request body, bytes — queries are tiny.
MAX_BODY_BYTES = 64 * 1024

#: Ceiling on ``targets``/``candidates`` list lengths per request.
MAX_PROFILE_TARGETS = 256

#: Ceiling on batch size — one admitted request runs the whole batch.
MAX_BATCH_ITEMS = 256


class BadRequest(ValueError):
    """The request body failed validation (maps to HTTP 400)."""


def parse_interval(body: dict) -> TimeInterval:
    """Build the leaving interval from clock strings or absolute minutes."""
    if "from" in body or "to" in body:
        if not ("from" in body and "to" in body):
            raise BadRequest("'from' and 'to' must be supplied together")
        day = body.get("day", 0)
        if not isinstance(day, int):
            raise BadRequest(f"'day' must be an integer, got {day!r}")
        try:
            return TimeInterval(
                parse_clock(str(body["from"]), day),
                parse_clock(str(body["to"]), day),
            )
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
    if "start" in body and "end" in body:
        try:
            return TimeInterval(float(body["start"]), float(body["end"]))
        except (TypeError, ValueError) as exc:
            raise BadRequest(
                f"'start'/'end' must be numbers: {exc}"
            ) from exc
    raise BadRequest(
        "interval missing: supply 'from'/'to' clock strings or "
        "'start'/'end' minutes"
    )


def _require_node_id(body: dict, field: str) -> int:
    if field not in body:
        raise BadRequest(f"missing required field {field!r}")
    if not isinstance(body[field], int) or isinstance(body[field], bool):
        raise BadRequest(
            f"{field!r} must be an integer node id, got {body[field]!r}"
        )
    return body[field]


def _node_id_list(body: dict, field: str, required: bool) -> tuple[int, ...] | None:
    value = body.get(field)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {field!r}")
        return None
    if not isinstance(value, list) or not value:
        raise BadRequest(f"{field!r} must be a non-empty list of node ids")
    if len(value) > MAX_PROFILE_TARGETS:
        raise BadRequest(
            f"{field!r} has {len(value)} entries; at most "
            f"{MAX_PROFILE_TARGETS} allowed"
        )
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool):
            raise BadRequest(
                f"{field!r} entries must be integer node ids, got {item!r}"
            )
    return tuple(value)


def _batch_pairs(body: dict) -> tuple[tuple[int, int], ...]:
    """The batch's ``(source, target)`` pairs from either accepted form."""
    items = body.get("items")
    if items is not None:
        if not isinstance(items, list) or not items:
            raise BadRequest("'items' must be a non-empty list of objects")
        if len(items) > MAX_BATCH_ITEMS:
            raise BadRequest(
                f"'items' has {len(items)} entries; at most "
                f"{MAX_BATCH_ITEMS} allowed"
            )
        pairs = []
        for item in items:
            if not isinstance(item, dict):
                raise BadRequest(
                    f"'items' entries must be objects, got {item!r}"
                )
            pairs.append(
                (_require_node_id(item, "source"), _require_node_id(item, "target"))
            )
        return tuple(pairs)
    source = _require_node_id(body, "source")
    targets = _node_id_list(body, "targets", required=False)
    if targets is None:
        raise BadRequest(
            "batch requires either 'items' (source/target objects) or "
            "'source' plus 'targets'"
        )
    if len(targets) > MAX_BATCH_ITEMS:
        raise BadRequest(
            f"'targets' has {len(targets)} entries; at most "
            f"{MAX_BATCH_ITEMS} allowed"
        )
    return tuple((source, target) for target in targets)


def parse_request(body: dict, mode: str) -> QueryRequest:
    target = targets = candidates = k = pairs = None
    if mode == "batch":
        pairs = _batch_pairs(body)
        source = pairs[0][0]
    else:
        source = _require_node_id(body, "source")
    if mode in ("allfp", "singlefp"):
        target = _require_node_id(body, "target")
    elif mode == "profile":
        # One-to-all output is unbounded over HTTP, so the list is required.
        targets = _node_id_list(body, "targets", required=True)
    elif mode == "knn":
        candidates = _node_id_list(body, "candidates", required=True)
        k = body.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise BadRequest(f"'k' must be a positive integer, got {k!r}")
    deadline = body.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"'deadline' must be a number: {exc}") from exc
        if deadline <= 0:
            raise BadRequest("'deadline' must be positive")
    max_staleness = body.get("max_staleness")
    if max_staleness is not None:
        if isinstance(max_staleness, bool) or not isinstance(
            max_staleness, (int, float)
        ):
            raise BadRequest(
                f"'max_staleness' must be seconds >= 0, got {max_staleness!r}"
            )
        max_staleness = float(max_staleness)
        if max_staleness < 0:
            raise BadRequest("'max_staleness' must be >= 0")
    try:
        return QueryRequest(
            source=source,
            target=target,
            interval=parse_interval(body),
            mode=mode,
            deadline=deadline,
            targets=targets,
            candidates=candidates,
            k=k,
            pairs=pairs,
            max_staleness=max_staleness,
        )
    except QueryError as exc:
        raise BadRequest(str(exc)) from exc


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The server object carries the service (see ServeServer below).
    @property
    def service(self) -> AllFPService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict, extra_headers: dict | None = None
    ) -> None:
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(
        self, status: int, exc: BaseException, extra_headers: dict | None = None
    ) -> None:
        self._send_json(
            status,
            {"error": type(exc).__name__, "message": str(exc)},
            extra_headers,
        )

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/healthz":
            network = self.service.network
            body = {
                "status": "degraded" if self.service.degraded else "ok",
                "degraded": self.service.degraded,
                "version": self.service.version,
                "network_version": getattr(self.service, "net_version", 0),
                "staleness_seconds": self.service.staleness_seconds()
                if callable(getattr(self.service, "staleness_seconds", None))
                else 0.0,
                "pending_updates": getattr(
                    self.service, "pending_updates", 0
                ),
                "nodes": network.node_count,
            }
            # The shard tier aggregates per-worker health; single-process
            # services have no shard_health and keep the flat body.
            shard_health = getattr(self.service, "shard_health", None)
            if callable(shard_health):
                body["shards"] = shard_health()
            self._send_json(200, body)
        elif self.path == "/metrics":
            data = self.service.render_metrics().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        else:
            self._send_json(404, {"error": "NotFound", "message": self.path})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/v1/allfp": "allfp",
            "/v1/singlefp": "singlefp",
            "/v1/profile": "profile",
            "/v1/knn": "knn",
            "/v1/batch": "batch",
        }
        mode = routes.get(self.path)
        if mode is None and self.path != "/v1/updates":
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        try:
            reliability.fire("repro.serve.http.request")
            length = int(self.headers.get("Content-Length", 0))
            if length > MAX_BODY_BYTES:
                raise BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise BadRequest(f"invalid JSON body: {exc}") from exc
            if not isinstance(body, dict):
                raise BadRequest("JSON body must be an object")
            if mode is None:
                batch = MutationBatch.from_wire(body)
                version = self.service.apply_updates(batch)
                self._send_json(
                    200,
                    {
                        "version": version,
                        "applied": len(batch),
                        "staleness_seconds": self.service.staleness_seconds(),
                    },
                )
                return
            request = parse_request(body, mode)
            response = self.service.query(request)
        except BadRequest as exc:
            self._send_error_json(400, exc)
        except ServiceOverloaded as exc:
            self._send_error_json(
                503, exc, {"Retry-After": f"{exc.retry_after:.3f}"}
            )
        except StalenessExceeded as exc:
            # The service is catching up on the mutation stream; the hint
            # is how far over the caller's bound it currently runs.
            retry = max(exc.staleness - exc.max_staleness, 0.05)
            self._send_error_json(503, exc, {"Retry-After": f"{retry:.3f}"})
        except ShardUnavailable as exc:
            # Every ring candidate was down or breaker-open: the tier is
            # temporarily unhealthy, not the request malformed.
            self._send_error_json(503, exc)
        except QueryTimeout as exc:
            self._send_error_json(504, exc)
        except (NoPathError, NetworkError) as exc:
            # Unknown node ids surface as NodeNotFoundError (a NetworkError).
            self._send_error_json(404, exc)
        except (QueryError, ValueError) as exc:
            self._send_error_json(400, exc)
        except ReproError as exc:
            self._send_error_json(500, exc)
        else:
            body = {
                "result": response.result.as_dict(),
                "cached": response.cached,
                "coalesced": response.coalesced,
                "elapsed_ms": response.elapsed_seconds * 1e3,
                "degraded": response.degraded,
                "stale": response.stale,
                "version": getattr(response, "version", -1),
            }
            if getattr(response, "degraded_shard", None) is not None:
                body["degraded_shard"] = response.degraded_shard
            self._send_json(200, body)


class ServeServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`AllFPService`."""

    daemon_threads = True

    def __init__(self, address, service: AllFPService, quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def make_server(
    service: AllFPService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> ServeServer:
    """Bind (but do not start) the HTTP front-end; ``port=0`` auto-assigns."""
    return ServeServer((host, port), service, quiet=quiet)


def start_in_thread(server: ServeServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, smoke scripts)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return thread
