"""`AllFPService` — the embeddable concurrent query service.

Turns :class:`~repro.core.engine.IntAllFastestPaths` from a library call
into a system component:

* one preloaded network and one **shared warm edge-function cache** across
  every worker (the dominant per-query cost is materialising edge arrival
  functions; sharing the cache means any worker's work warms all workers),
* a bounded **thread worker pool** — each worker owns its own engine and a
  cheap clone of the estimator (estimator ``prepare(target)`` mutates
  per-query state, so the heavy precomputed tables are shared while the
  mutable cursor is per-worker),
* **request coalescing** (single-flight) and a **TTL+LRU result cache**
  keyed on the query plus the service's version stamp,
* **admission control** with fast-fail rejection and wall-clock deadlines
  threaded into the engine's pop loop,
* a :class:`~repro.serve.metrics.MetricsRegistry` that every layer reports
  into, rendered by ``GET /metrics``.

The engine is pure-Python compute, so the pool does not add CPU
parallelism under the GIL — it exists so the HTTP layer never blocks, so
slow queries don't head-of-line-block fast ones, and so coalescing has
concurrent duplicates to merge.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.engine import (
    DEFAULT_EDGE_CACHE_SIZE,
    EdgeFunctionCache,
    IntAllFastestPaths,
    QueryTimeout,
)
from ..core.batch import BatchResult, batch_fastest_times
from ..core.knn import KnnResult, interval_knn
from ..core.profile import ProfileResult, profile_search
from ..core.results import AllFPResult, SearchStats, SingleFPResult
from ..core.runtime import SearchContext
from ..estimators.base import LowerBoundEstimator
from ..estimators.naive import NaiveEstimator
from ..exceptions import (
    NoPathError,
    QueryError,
    ReproError,
    ServiceClosed,
    ServiceOverloaded,
    StalenessExceeded,
    WorkerCrashed,
)
from .. import reliability
from ..func import kernel
from ..reliability import CircuitBreaker
from ..timeutil import TimeInterval
from .admission import AdmissionController, Deadline
from .batching import ResultCache, SingleFlight
from .metrics import MetricsRegistry
from .updates import MutationBatch, ReadWriteLock, apply_batch, validate_batch

MODES = ("allfp", "singlefp", "profile", "knn", "batch")


@dataclass(frozen=True)
class QueryRequest:
    """One service request.

    ``deadline`` (seconds, optional) overrides the service default; it is
    deliberately **not** part of the coalescing/cache key — two callers
    asking the same question with different patience share one answer.

    ``target`` is required by the point-to-point modes (``allfp``,
    ``singlefp``) and ignored by the one-to-many ones.  ``targets``
    restricts a ``profile`` answer to the listed nodes; ``candidates``/``k``
    parameterise ``knn``.  All three are normalised to sorted tuples so the
    coalescing/cache key is canonical.

    ``pairs`` parameterises ``batch``: the ``(source, target)`` queries to
    answer together, preserved in input order (answers come back
    positionally), so the cache key is order-sensitive — two batches with
    the same pairs in a different order are different requests.  ``source``
    is conventionally the first pair's source for a batch request.

    ``max_staleness`` (seconds, optional) opts the caller into the bounded
    staleness contract: when the service has accepted live updates it has
    not yet finished applying for longer than this, the request is refused
    with a typed :class:`~repro.exceptions.StalenessExceeded` instead of
    being answered against the old network version.  Like ``deadline`` it
    is not part of the coalescing/cache key — it changes *whether* the
    question is answered, never the answer.
    """

    source: int
    target: int | None
    interval: TimeInterval
    mode: str = "allfp"
    deadline: float | None = None
    targets: tuple[int, ...] | None = None
    candidates: tuple[int, ...] | None = None
    k: int | None = None
    pairs: tuple[tuple[int, int], ...] | None = None
    max_staleness: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise QueryError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.targets is not None:
            object.__setattr__(
                self, "targets", tuple(sorted(set(self.targets)))
            )
        if self.candidates is not None:
            object.__setattr__(
                self, "candidates", tuple(sorted(set(self.candidates)))
            )
        if self.pairs is not None:
            object.__setattr__(
                self,
                "pairs",
                tuple((int(s), int(t)) for s, t in self.pairs),
            )
        if self.mode in ("allfp", "singlefp") and self.target is None:
            raise QueryError(f"mode {self.mode!r} requires a target")
        if self.mode == "knn":
            if not self.candidates:
                raise QueryError("mode 'knn' requires a candidates list")
            if self.k is None or self.k < 1:
                raise QueryError(f"mode 'knn' requires k >= 1, got {self.k}")
        if self.mode == "batch" and not self.pairs:
            raise QueryError(
                "mode 'batch' requires a non-empty pairs list"
            )

    def key(self, version: int) -> tuple:
        return (
            self.source,
            self.target,
            self.interval.start,
            self.interval.end,
            self.mode,
            self.targets,
            self.candidates,
            self.k,
            self.pairs,
            version,
        )


@dataclass(frozen=True)
class QueryResponse:
    """A result plus how the service produced it.

    ``degraded`` flags answers computed in a degraded mode — the estimator
    circuit breaker fell back to the naive Euclidean bound (still admissible,
    so the answer itself remains exact) or ``stale`` is set and the result
    was served from the version-stamped cache after a deadline tripped
    mid-recompute (possibly predating the latest network update).

    ``version`` is the network version this answer was computed against —
    the contract the mutation-chaos harness holds the service to: a
    non-stale answer claiming version ``v`` must byte-match a fault-free
    re-execution against the network with exactly the first ``v`` update
    batches applied.  ``-1`` means unversioned (stale-cache fallbacks,
    pre-update wire peers).
    """

    result: AllFPResult | SingleFPResult | ProfileResult | KnnResult | BatchResult
    cached: bool = False
    coalesced: bool = False
    elapsed_seconds: float = 0.0
    degraded: bool = False
    stale: bool = False
    #: set by the shard router when the ring-preferred shard could not
    #: answer and a successor served the (still exact) result instead
    degraded_shard: int | None = None
    version: int = -1


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`AllFPService` (see ``docs/serving.md``)."""

    workers: int = 4
    max_pending: int = 64
    default_deadline: float | None = 30.0
    coalesce: bool = True
    cache_results: bool = True
    result_cache_size: int = 1024
    result_cache_ttl: float = 300.0
    edge_cache_size: int = DEFAULT_EDGE_CACHE_SIZE
    prune: bool = True
    max_pops: int | None = None
    #: bounded retry budget for worker tasks that die with an *unexpected*
    #: (non-Repro) error; the crashed worker's engine is replaced first
    task_retries: int = 1
    #: consecutive estimator clone/refresh failures before the circuit
    #: breaker opens and workers fall back to the naive bound
    breaker_failures: int = 3
    #: seconds the breaker stays open before allowing one trial clone
    breaker_reset: float = 30.0
    #: serve the last good (possibly stale) result when a deadline trips
    serve_stale: bool = False
    #: set by the shard tier on worker services; stamped as const labels
    #: onto every /metrics sample so multi-shard scrapes are attributable
    shard_id: int | None = None
    shard_count: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.task_retries < 0:
            raise ValueError(
                f"task_retries must be >= 0, got {self.task_retries}"
            )


class _SharedEdgeFunctionCache(EdgeFunctionCache):
    """The engine's edge cache with a lock, safe to share across workers.

    Holding the lock across the (occasionally slow) function build is
    deliberate: it guarantees concurrent workers never build the same edge
    function twice, which is the point of sharing the cache.
    """

    __slots__ = ("_shared_lock",)

    def __init__(self, calendar, max_entries: int) -> None:
        super().__init__(calendar, max_entries)
        self._shared_lock = threading.Lock()

    def arrival(self, edge, lo, hi):
        with self._shared_lock:
            return super().arrival(edge, lo, hi)

    def clear(self) -> int:
        with self._shared_lock:
            return super().clear()

    def snapshot(self) -> dict[str, int]:
        with self._shared_lock:
            return super().snapshot()


def clone_estimator(estimator: LowerBoundEstimator) -> LowerBoundEstimator:
    """A per-worker clone sharing the heavy precomputed state.

    Estimators are re-targeted per query via ``prepare(target)``, which
    mutates a small cursor (target id/location/cell) — sharing one instance
    across concurrent queries would race.  A shallow copy duplicates that
    cursor while aliasing the read-only precomputed tables (grid, cell-pair
    matrix, boundary distances).  Estimators owning a nested estimator in
    ``_naive`` (e.g. the boundary estimator) get that nested cursor copied
    too.  An estimator may override this wholesale with a
    ``clone_for_worker()`` method.
    """
    custom = getattr(estimator, "clone_for_worker", None)
    if callable(custom):
        return custom()
    clone = copy.copy(estimator)
    nested = getattr(clone, "_naive", None)
    if isinstance(nested, LowerBoundEstimator):
        clone._naive = copy.copy(nested)
    return clone


class AllFPService:
    """Concurrent allFP/singleFP query service over one network.

    Parameters
    ----------
    network:
        Anything with the engine's accessor surface (in-memory network or
        CCAM store).  Loaded once, shared by every worker.
    estimator:
        The (possibly precomputed) estimator to clone per worker; defaults
        to the engine's naive estimator.
    config:
        A :class:`ServiceConfig`; defaults are sized for tests and small
        deployments.
    degraded:
        Mark the whole service degraded from boot — set by the CLI when the
        requested estimator snapshot failed to load and the service fell
        back to a weaker (but admissible) bound.  Every response carries
        ``degraded=True`` until :meth:`invalidate` successfully refreshes
        the estimator.
    overlay:
        A :class:`~repro.hierarchy.overlay.MultiLevelOverlay` built (or
        mapped from a v2 snapshot) for this exact network.  When given,
        ``allfp``/``singlefp`` requests run on
        :class:`~repro.hierarchy.engine.OverlayEngine` — climbing levels
        instead of flooding the flat graph — with identical answers; the
        one-to-many modes are unaffected.
    """

    def __init__(
        self,
        network,
        estimator: LowerBoundEstimator | None = None,
        config: ServiceConfig | None = None,
        degraded: bool = False,
        *,
        overlay=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._network = network
        self._estimator = estimator
        self._overlay = overlay
        self._boot_degraded = degraded
        self._edge_cache = _SharedEdgeFunctionCache(
            network.calendar, self.config.edge_cache_size
        )
        # One shared runtime for every engine and every one-to-many search:
        # the lock-wrapped edge cache makes it safe across the worker pool.
        self._context = SearchContext(
            network,
            edge_cache=self._edge_cache,
            max_pops=self.config.max_pops,
        )
        self._admission = AdmissionController(self.config.max_pending)
        self._single_flight = SingleFlight()
        self._result_cache = ResultCache(
            self.config.result_cache_size, self.config.result_cache_ttl
        )
        # Last good answers keyed *without* the version stamp; consulted only
        # when a deadline trips and config.serve_stale is on.  Deliberately
        # survives invalidate() — staleness is its entire point.
        self._stale_cache = ResultCache(
            self.config.result_cache_size, float("inf")
        )
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout=self.config.breaker_reset,
        )
        self._fallback_estimator: NaiveEstimator | None = None
        self._fallback_lock = threading.Lock()
        self.metrics = MetricsRegistry(const_labels=self._metric_labels())
        self._version = 0
        # Network version: count of applied live-update batches.  Distinct
        # from ``_version`` (the cache-generation stamp, which also bumps on
        # plain invalidate()); this one is the version answers *claim*.
        self._net_version = 0
        # Queries hold the read side while computing so every answer is
        # produced against exactly one network version; updates hold the
        # write side.  Writer-preferring: a steady query stream cannot
        # starve the mutation feed.
        self._update_rw = ReadWriteLock()
        self._pending_lock = threading.Lock()
        self._pending_updates: list[float] = []
        self._update_batches_applied = 0
        self._update_mutations_applied = 0
        self._max_staleness_observed = 0.0
        self._closed = False
        self._engine_generation = 0
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker",
        )
        self.metrics.set_gauge(
            "pending_requests",
            lambda: self._admission.pending,
            help="Requests admitted and not yet answered",
        )
        self.metrics.set_gauge(
            "edge_cache_entries",
            self._edge_cache.__len__,
            help="Edge arrival functions resident in the shared cache",
        )
        self.metrics.set_gauge(
            "result_cache_entries",
            self._result_cache.__len__,
            help="Entries resident in the TTL+LRU result cache",
        )
        self.metrics.set_gauge(
            "service_version",
            lambda: float(self._version),
            help="Network/pattern version stamp keyed into the result cache",
        )
        self.metrics.set_gauge(
            "service_degraded",
            lambda: 1.0 if self.degraded else 0.0,
            help="1 when the service is serving degraded answers "
            "(estimator breaker open or boot-time fallback)",
        )
        self.metrics.set_gauge(
            "network_applied_version",
            lambda: float(self._net_version),
            help="Count of live-update batches applied to this service",
        )
        self.metrics.set_gauge(
            "update_staleness_seconds",
            self.staleness_seconds,
            help="Age of the oldest accepted-but-unapplied update batch "
            "(0 when nothing is pending)",
        )
        self.metrics.set_gauge(
            "updates_pending",
            lambda: float(len(self._pending_updates)),
            help="Update batches accepted and not yet fully applied",
        )
        self.metrics.set_gauge(
            "estimator_breaker_open",
            lambda: 0.0 if self._breaker.state == "closed" else 1.0,
            help="1 while the estimator circuit breaker is open or half-open",
        )
        self.metrics.set_gauge(
            "fault_injections_total",
            lambda: float(reliability.fired_total()),
            help="Faults fired by the reliability injector (0 when inactive)",
        )
        self._register_estimator_metrics()

    def _metric_labels(self) -> dict[str, str]:
        """Const labels every /metrics sample carries: which kernel backend
        computed the answers, and — under the shard tier — which shard."""
        labels = {"kernel_backend": kernel.active_backend()}
        if self.config.shard_id is not None:
            labels["shard_id"] = str(self.config.shard_id)
        if self.config.shard_count is not None:
            labels["shard_count"] = str(self.config.shard_count)
        return labels

    def _register_estimator_metrics(self) -> None:
        """Warm-start accounting for precomputed estimators.

        A snapshot-loaded estimator counts as one ``snapshot hit`` (the boot
        skipped its Dijkstras); an estimator that precomputed in-process
        counts as a ``miss`` and reports the seconds it spent.  Estimators
        without precomputation (e.g. naive) register nothing.
        """
        estimator = self._estimator
        if estimator is None or not hasattr(estimator, "precompute_seconds"):
            return
        self.metrics.set_gauge(
            "estimator_precompute_seconds",
            lambda: float(getattr(estimator, "precompute_seconds", 0.0)),
            help="Wall-clock seconds the estimator precompute took "
            "(0 when warm-started from a snapshot)",
        )
        warm = bool(getattr(estimator, "loaded_from_snapshot", False))
        self.metrics.inc(
            "estimator_snapshot_hits_total",
            1.0 if warm else 0.0,
            help="Boots that warm-started the estimator from a snapshot",
        )
        self.metrics.inc(
            "estimator_snapshot_misses_total",
            0.0 if warm else 1.0,
            help="Boots that paid the estimator precompute in-process",
        )

    # ------------------------------------------------------------------
    @property
    def network(self):
        return self._network

    @property
    def version(self) -> int:
        """The network/pattern version stamp baked into cache keys."""
        return self._version

    @property
    def net_version(self) -> int:
        """Applied network version: how many update batches are live."""
        return self._net_version

    @property
    def degraded(self) -> bool:
        """True while the service as a whole is in a degraded mode."""
        return self._boot_degraded or self._breaker.state != "closed"

    @property
    def pending_updates(self) -> int:
        """Update batches accepted and not yet fully applied."""
        with self._pending_lock:
            return len(self._pending_updates)

    def staleness_seconds(self) -> float:
        """Age of the oldest accepted-but-unapplied update batch (0 if none).

        This is the number ``max_staleness`` is checked against and the one
        ``/metrics`` exports: how far behind the accepted mutation stream
        the answers currently being served may be.
        """
        with self._pending_lock:
            if not self._pending_updates:
                return 0.0
            return max(0.0, time.monotonic() - self._pending_updates[0])

    def invalidate(self, refresh_estimator: bool = False) -> int:
        """Bump the version stamp and drop every cached result.

        Call after mutating the network or its speed patterns (e.g. a live
        traffic update); the write side of the update lock is held, so
        in-flight queries finish against the old data first and every query
        admitted afterwards misses the cache and recomputes — no answer is
        produced against a half-refreshed estimator.

        With ``refresh_estimator=True`` an estimator exposing ``refresh()``
        (the boundary estimator) recomputes its tables against the updated
        network, and every worker's engine is rebuilt so the fresh tables
        take effect — a snapshot loaded for the old network version is
        considered invalid from here on.
        """
        self._update_rw.acquire_write()
        try:
            self._version += 1
            dropped = self._result_cache.clear()
            self._edge_cache.clear()
            self.metrics.inc(
                "invalidations_total",
                help="Version bumps (network/pattern updates)",
            )
            if refresh_estimator and self._estimator is not None:
                refresh = getattr(self._estimator, "refresh", None)
                if callable(refresh):
                    try:
                        refresh()
                    except ReproError:
                        # Keep serving: the breaker records the failure and
                        # workers fall back to the naive bound until a later
                        # refresh or trial clone succeeds.
                        self._breaker.record_failure()
                        self.metrics.inc(
                            "estimator_refresh_failures_total",
                            help="Estimator refreshes that failed "
                            "(service continues on the old/fallback bound)",
                        )
                    else:
                        self._breaker.record_success()
                        self._boot_degraded = False
                        self.metrics.inc(
                            "estimator_refreshes_total",
                            help="Estimator precompute refreshes after invalidation",
                        )
                # Rebuild per-worker engines lazily so clones see the new
                # tables.
                self._engine_generation += 1
            return dropped
        finally:
            self._update_rw.release_write()

    def apply_updates(
        self,
        batch: MutationBatch,
        version: int | None = None,
        workers: int | None = None,
    ) -> int:
        """Apply one live-update batch and delta re-customize; returns the
        new network version.

        The batch is validated up front (typed errors, nothing applied on
        failure), counted as *pending* while it waits for in-flight queries
        to drain, then applied under the write side of the update lock:
        edge patterns mutate, the boundary estimator and overlay refresh
        only the cells the mutated edges can influence
        (:func:`~repro.estimators.precompute.refresh_tables_delta`,
        :meth:`~repro.hierarchy.overlay.MultiLevelOverlay.refresh_delta`),
        and the edge-function and result caches drop so no pre-update
        function survives.  ``version`` lets the shard tier impose its
        monotonic version instead of the local counter.
        """
        if self._closed:
            raise ServiceClosed("service is shut down")
        validate_batch(self._network, batch)
        accepted_at = time.monotonic()
        with self._pending_lock:
            self._pending_updates.append(accepted_at)
        self._update_rw.acquire_write()
        try:
            applied = apply_batch(self._network, batch)
            estimator = self._estimator
            if estimator is not None:
                delta = getattr(estimator, "refresh_delta", None)
                refresh = delta if callable(delta) else getattr(
                    estimator, "refresh", None
                )
                if callable(refresh):
                    try:
                        if refresh is delta:
                            refresh(applied, workers=workers)
                        else:
                            refresh()
                    except ReproError:
                        self._breaker.record_failure()
                        self.metrics.inc(
                            "estimator_refresh_failures_total",
                            help="Estimator refreshes that failed "
                            "(service continues on the old/fallback bound)",
                        )
                    else:
                        self._breaker.record_success()
            if self._overlay is not None:
                self._overlay.refresh_delta(
                    applied, workers=workers if workers is not None else 1
                )
            # The naive fallback memoises v_max; rebuild it on next need.
            with self._fallback_lock:
                self._fallback_estimator = None
            self._net_version = (
                version if version is not None else self._net_version + 1
            )
            self._version += 1
            self._result_cache.clear()
            self._edge_cache.clear()
            self._engine_generation += 1
            self._update_batches_applied += 1
            self._update_mutations_applied += len(batch)
            self.metrics.inc(
                "updates_applied_total",
                help="Live-update batches applied",
            )
            self.metrics.inc(
                "update_mutations_total",
                len(batch),
                help="Edge-pattern mutations applied across all batches",
            )
            return self._net_version
        finally:
            self._update_rw.release_write()
            lag = time.monotonic() - accepted_at
            with self._pending_lock:
                self._pending_updates.remove(accepted_at)
                if lag > self._max_staleness_observed:
                    self._max_staleness_observed = lag
            self.metrics.observe(
                "update_apply_seconds",
                lag,
                help="Accept-to-applied latency per update batch",
            )

    # ------------------------------------------------------------------
    def all_fastest_paths(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        return self.query(
            QueryRequest(source, target, interval, "allfp", deadline)
        )

    def single_fastest_path(
        self,
        source: int,
        target: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        return self.query(
            QueryRequest(source, target, interval, "singlefp", deadline)
        )

    def profile(
        self,
        source: int,
        interval: TimeInterval,
        targets=None,
        deadline: float | None = None,
    ) -> QueryResponse:
        return self.query(
            QueryRequest(
                source,
                None,
                interval,
                "profile",
                deadline,
                targets=None if targets is None else tuple(targets),
            )
        )

    def knn(
        self,
        source: int,
        candidates,
        k: int,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        return self.query(
            QueryRequest(
                source,
                None,
                interval,
                "knn",
                deadline,
                candidates=tuple(candidates),
                k=k,
            )
        )

    def batch(
        self,
        pairs,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        """Answer many ``(source, target)`` queries as one admitted request.

        The batch passes admission control once (one slot regardless of
        size — size the deadline accordingly), shares the service's
        ``SearchContext``/edge-function cache across its per-source profile
        searches, and returns a :class:`~repro.core.batch.BatchResult` with
        one item per pair in input order.  A deadline that trips mid-batch
        yields per-item errors for the unfinished pairs rather than losing
        the finished ones.
        """
        pairs = tuple((int(s), int(t)) for s, t in pairs)
        if not pairs:
            raise QueryError("batch requires at least one (source, target) pair")
        return self.query(
            QueryRequest(
                pairs[0][0], None, interval, "batch", deadline, pairs=pairs
            )
        )

    def batch_one_to_many(
        self,
        source: int,
        targets,
        interval: TimeInterval,
        deadline: float | None = None,
    ) -> QueryResponse:
        """One-to-many convenience: one source against many targets."""
        return self.batch(
            [(source, target) for target in targets], interval, deadline
        )

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one request through admission, cache, and coalescing.

        Raises :class:`~repro.exceptions.ServiceOverloaded` on fast-fail,
        :class:`~repro.core.engine.QueryTimeout` past the deadline, and
        the engine's usual errors (``NoPathError``, ``QueryError``) —
        all of which leave the worker pool healthy.
        """
        started = time.monotonic()
        labels = {"mode": request.mode}
        self.metrics.inc(
            "requests_total", labels=labels, help="Requests received"
        )
        if self._closed:
            self._finish(request, started, "closed")
            raise ServiceClosed("service is shut down")
        if request.max_staleness is not None:
            staleness = self.staleness_seconds()
            if staleness > request.max_staleness:
                self.metrics.inc(
                    "staleness_rejections_total",
                    help="Requests refused because the service was more "
                    "stale than their max_staleness allowed",
                )
                self._finish(request, started, "stale_rejected")
                raise StalenessExceeded(staleness, request.max_staleness)
        try:
            self._admission.try_acquire()
        except ServiceOverloaded:
            self._finish(request, started, "rejected")
            raise
        try:
            # The read side pins the network version for the whole
            # computation: updates wait for in-flight queries, so the
            # version captured here is the version the answer is made at.
            self._update_rw.acquire_read()
            try:
                version = self._net_version
                response = self._admitted(request, started)
            finally:
                self._update_rw.release_read()
        except QueryTimeout:
            self._finish(request, started, "timeout")
            raise
        except NoPathError:
            self._finish(request, started, "no_path")
            raise
        except ReproError:
            self._finish(request, started, "error")
            raise
        finally:
            self._admission.release()
        self._finish(request, started, "ok")
        degraded = response.degraded or self._boot_degraded
        if degraded:
            self.metrics.inc(
                "degraded_responses_total",
                help="Answers produced in a degraded mode (fallback bound "
                "or stale cache) — still admissible/typed, never silent",
            )
        return QueryResponse(
            result=response.result,
            cached=response.cached,
            coalesced=response.coalesced,
            elapsed_seconds=time.monotonic() - started,
            degraded=degraded,
            stale=response.stale,
            # A stale-cache fallback may predate any version; leave it
            # unversioned so nothing holds it to the byte-match contract.
            version=-1 if response.stale else version,
        )

    # ------------------------------------------------------------------
    def _finish(self, request: QueryRequest, started: float, status: str) -> None:
        self.metrics.inc(
            "responses_total",
            labels={"mode": request.mode, "status": status},
            help="Responses by outcome",
        )
        self.metrics.observe(
            "request_latency_seconds",
            time.monotonic() - started,
            labels={"mode": request.mode},
            help="End-to-end request latency",
        )

    def _admitted(self, request: QueryRequest, started: float) -> QueryResponse:
        budget = (
            request.deadline
            if request.deadline is not None
            else self.config.default_deadline
        )
        deadline = None if budget is None else Deadline.after(budget)
        key = request.key(self._version)

        if self.config.cache_results:
            hit = self._result_cache.get(key)
            if hit is not None:
                self.metrics.inc("result_cache_hits_total", help="Result cache hits")
                result, degraded = hit
                return QueryResponse(result=result, cached=True, degraded=degraded)
            self.metrics.inc("result_cache_misses_total", help="Result cache misses")

        def compute():
            return self._pool.submit(self._run_engine, request, deadline).result()

        try:
            if self.config.coalesce:
                entry, leader = self._single_flight.do(key, compute)
                if not leader:
                    self.metrics.inc(
                        "coalesced_total",
                        help="Requests that shared another request's computation",
                    )
            else:
                entry, leader = compute(), True
        except QueryTimeout:
            stale = self._serve_stale(request)
            if stale is not None:
                return stale
            raise
        result, degraded = entry
        if leader:
            if self.config.cache_results:
                self._result_cache.put(key, entry)
            if self.config.serve_stale and not degraded:
                # Versionless key: the whole point is surviving invalidation.
                self._stale_cache.put(request.key(-1), result)
        return QueryResponse(result=result, coalesced=not leader, degraded=degraded)

    def _serve_stale(self, request: QueryRequest) -> QueryResponse | None:
        """The last good answer for this query, if stale serving allows it."""
        if not self.config.serve_stale:
            return None
        hit = self._stale_cache.get(request.key(-1))
        if hit is None:
            return None
        self.metrics.inc(
            "stale_results_served_total",
            help="Deadline trips answered from the last good (stale) result",
        )
        return QueryResponse(result=hit, cached=True, degraded=True, stale=True)

    def _fallback(self) -> NaiveEstimator:
        """The shared naive fallback estimator, built once on first need.

        ``NaiveEstimator`` scans every edge for ``max_speed()``; doing that
        once and handing workers shallow copies keeps fallback activation
        cheap even on large networks.
        """
        with self._fallback_lock:
            if self._fallback_estimator is None:
                self._fallback_estimator = NaiveEstimator(self._network)
            return self._fallback_estimator

    def _worker_estimator(self) -> tuple[LowerBoundEstimator | None, bool]:
        """A per-worker estimator clone, or the naive fallback when cloning
        fails (returns ``(estimator, degraded)``).

        Clone failures feed the circuit breaker: after
        ``config.breaker_failures`` consecutive failures the breaker opens
        and workers stop even attempting the clone until ``breaker_reset``
        seconds pass, at which point one trial clone decides whether to
        close again.  The naive bound is still admissible, so A* stays
        exact — only slower — which is why fallback answers are *flagged*
        degraded rather than refused.
        """
        if self._estimator is None:
            return None, False
        if self._breaker.allow():
            try:
                reliability.fire("repro.serve.service.clone")
                clone = clone_estimator(self._estimator)
            except Exception:
                self._breaker.record_failure()
            else:
                self._breaker.record_success()
                return clone, False
        self.metrics.inc(
            "estimator_fallbacks_total",
            help="Worker engines built on the naive fallback bound because "
            "the estimator clone failed or the breaker was open",
        )
        return copy.copy(self._fallback()), True

    def _engine(self):
        engine = getattr(self._local, "engine", None)
        if getattr(self._local, "generation", None) != self._engine_generation:
            engine = None
            self._local.generation = self._engine_generation
        if (
            engine is not None
            and getattr(self._local, "degraded", False)
            and self._breaker.state != "open"
        ):
            # Recovery path: the breaker closed (another worker's trial
            # clone succeeded) or is half-open (this rebuild becomes the
            # trial).  Either way, try to get off the fallback bound.
            engine = None
        if engine is None:
            estimator, degraded = self._worker_estimator()
            if self._overlay is not None:
                from ..hierarchy.engine import OverlayEngine

                # Same shared context: warm street-edge cache and default
                # budgets; answers equal the flat engine's exactly.
                engine = OverlayEngine(
                    self._overlay,
                    estimator,
                    prune=self.config.prune,
                    context=self._context,
                )
            else:
                engine = IntAllFastestPaths(
                    self._network,
                    estimator,
                    prune=self.config.prune,
                    context=self._context,
                )
            self._local.engine = engine
            self._local.degraded = degraded
        return engine

    def _run_engine(self, request: QueryRequest, deadline: Deadline | None):
        """Executed on a worker thread; enforces the remaining deadline.

        An *unexpected* (non-Repro) error is treated as a worker crash:
        the thread-local engine is discarded — the replacement is built on
        the next attempt, exactly as a restarted worker would — and the
        task retries within the deadline up to ``config.task_retries``
        times before surfacing a typed :class:`WorkerCrashed`.
        """
        attempts = 0
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    # The request aged out while queued for a worker.
                    stats = SearchStats(timed_out=True)
                    self.metrics.inc(
                        "queue_timeouts_total",
                        help="Requests whose deadline expired before a worker picked them up",
                    )
                    raise QueryTimeout(deadline.budget, stats)
            try:
                return self._execute(request, remaining)
            except ReproError:
                # Typed errors (timeout, no-path, bad query, injected
                # faults surfacing as storage errors) are answers, not
                # crashes; retrying them would just repeat the answer.
                raise
            except Exception as exc:
                attempts += 1
                self.metrics.inc(
                    "worker_crashes_total",
                    help="Worker tasks that died with an unexpected error",
                )
                self._local.engine = None
                if attempts > self.config.task_retries:
                    raise WorkerCrashed(
                        attempts, f"{type(exc).__name__}: {exc}"
                    ) from exc
                self.metrics.inc(
                    "task_retries_total",
                    help="Crashed tasks retried on a replacement engine",
                )

    def _execute(self, request: QueryRequest, remaining: float | None):
        """One engine execution; returns ``(result, degraded)``."""
        self.metrics.inc("engine_runs_total", help="Actual engine executions")
        run_started = time.monotonic()
        reliability.fire("repro.serve.service.task")
        degraded = False
        try:
            if request.mode == "allfp":
                engine = self._engine()
                degraded = getattr(self._local, "degraded", False)
                result = engine.all_fastest_paths(
                    request.source, request.target, request.interval,
                    deadline=remaining,
                )
            elif request.mode == "singlefp":
                engine = self._engine()
                degraded = getattr(self._local, "degraded", False)
                result = engine.single_fastest_path(
                    request.source, request.target, request.interval,
                    deadline=remaining,
                )
            elif request.mode == "profile":
                result = profile_search(
                    self._network,
                    request.source,
                    request.interval,
                    targets=request.targets,
                    context=self._context,
                    deadline=remaining,
                )
            elif request.mode == "batch":
                result = batch_fastest_times(
                    self._network,
                    request.pairs,
                    request.interval,
                    context=self._context,
                    deadline=remaining,
                )
            else:  # knn
                result = interval_knn(
                    self._network,
                    request.source,
                    request.candidates,
                    request.k,
                    request.interval,
                    context=self._context,
                    deadline=remaining,
                )
        except QueryTimeout as exc:
            self._record_engine_stats(exc.stats, run_started)
            raise
        self._record_engine_stats(result.stats, run_started)
        return result, degraded

    def _record_engine_stats(self, stats: SearchStats, run_started: float) -> None:
        self.metrics.observe(
            "engine_seconds",
            time.monotonic() - run_started,
            help="Wall-clock time per engine execution",
        )
        self.metrics.inc(
            "engine_expanded_paths_total",
            stats.expanded_paths,
            help="SearchStats.expanded_paths summed over runs",
        )
        self.metrics.inc(
            "engine_labels_generated_total",
            stats.labels_generated,
            help="SearchStats.labels_generated summed over runs",
        )
        self.metrics.inc(
            "engine_pruned_total",
            stats.pruned_dominated + stats.pruned_bound,
            help="Dominance- and bound-pruned labels summed over runs",
        )
        self.metrics.inc(
            "engine_page_reads_total",
            stats.page_reads,
            help="Storage page reads summed over runs",
        )
        self.metrics.inc(
            "engine_bound_evaluations_total",
            stats.bound_evaluations,
            help="Estimator bound() evaluations summed over runs",
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A structured snapshot of every layer (for logs and tests)."""
        return {
            "version": self._version,
            "degraded": self.degraded,
            "updates": {
                "applied_version": self._net_version,
                "batches_applied": self._update_batches_applied,
                "mutations_applied": self._update_mutations_applied,
                "pending": len(self._pending_updates),
                "staleness_seconds": self.staleness_seconds(),
                "max_staleness_seconds": self._max_staleness_observed,
            },
            "overlay_levels": (
                self._overlay.level_count if self._overlay is not None else 0
            ),
            "admission": self._admission.snapshot(),
            "single_flight": self._single_flight.snapshot(),
            "result_cache": self._result_cache.snapshot(),
            "edge_cache": self._edge_cache.snapshot(),
            "engine_runs": self.metrics.counter_total("engine_runs_total"),
            "breaker": self._breaker.snapshot(),
            "faults_fired": reliability.fired_total(),
        }

    def render_metrics(self) -> str:
        return self.metrics.render()

    def close(self) -> None:
        """Stop accepting requests and shut the worker pool down."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "AllFPService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
