"""Chaos harness: drive a service under injected faults, check the invariant.

The invariant every run asserts (``docs/reliability.md``):

    Under any fault plan, every request ends in exactly one of
    (a) a **correct answer** — byte-identical to the fault-free baseline,
    (b) a **typed error** — some :class:`~repro.exceptions.ReproError`, or
    (c) a **flagged degraded answer** — ``degraded=True`` (and, when served
        from the stale cache, ``stale=True``); a degraded-but-fresh answer
        must *still* equal the baseline, because the fallback bound is
        admissible and A* stays exact.
    Never a hang, an untyped crash, or a silently wrong answer.

:func:`run_chaos` first records the fault-free baseline answer for every
query, then replays the same workload concurrently with the plan installed
and classifies each outcome.  Anything outside (a)–(c) lands in
``ChaosReport.violations`` and fails the run.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from .. import reliability
from ..exceptions import ReproError
from ..workloads.queries import QuerySpec
from .service import AllFPService, QueryRequest

#: Seconds a chaos worker thread may run before the harness calls it a hang.
DEFAULT_JOIN_TIMEOUT = 120.0


@dataclass
class ChaosReport:
    """Classified outcomes of one chaos run."""

    requests: int = 0
    ok: int = 0  # correct answers, degraded or not
    degraded: int = 0  # subset of ok that carried the degraded flag
    stale: int = 0  # subset of degraded served from the stale cache
    typed_errors: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    fault_events: int = 0
    wall_seconds: float = 0.0
    # Mutation-chaos runs only (defaults keep plain runs unchanged):
    mutations_applied: int = 0  # edge mutations applied during the replay
    versions: int = 0  # network versions the replay advanced through

    def passed(self) -> bool:
        return not self.violations

    def summary_lines(self) -> list[str]:
        lines = [
            f"chaos: {self.requests} requests in {self.wall_seconds:.2f}s "
            f"({self.fault_events} faults injected)"
            + (
                f", {self.mutations_applied} mutations across "
                f"{self.versions} versions"
                if self.versions
                else ""
            ),
            f"  ok={self.ok} (degraded={self.degraded}, stale={self.stale})",
            f"  typed errors: "
            + (
                ", ".join(
                    f"{name}={count}"
                    for name, count in sorted(self.typed_errors.items())
                )
                or "none"
            ),
        ]
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  invariant held: no hang, crash, or silent wrong answer")
        return lines

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "stale": self.stale,
            "typed_errors": dict(self.typed_errors),
            "violations": list(self.violations),
            "fault_events": self.fault_events,
            "wall_seconds": self.wall_seconds,
            "mutations_applied": self.mutations_applied,
            "versions": self.versions,
            "passed": self.passed(),
        }


def default_fault_plan(seed: int = 0) -> reliability.FaultPlan:
    """A representative mixed plan: storage errors, worker crashes,
    estimator clone failures (enough to open the breaker), and slow tasks.
    """
    return reliability.FaultPlan(
        seed=seed,
        specs=(
            reliability.FaultSpec(
                "repro.serve.service.clone", mode="error",
                error="estimator", probability=1.0, max_fires=8,
            ),
            reliability.FaultSpec(
                "repro.serve.service.task", mode="error",
                error="crash", probability=0.2,
            ),
            reliability.FaultSpec(
                "repro.storage.pages.read", mode="error",
                error="storage", probability=0.05,
            ),
            reliability.FaultSpec(
                "repro.serve.service.task", mode="delay",
                delay_seconds=0.002, probability=0.2,
            ),
        ),
    )


def _round_floats(value, ndigits: int = 6):
    if isinstance(value, float):
        return round(value, ndigits)
    if isinstance(value, list):
        return [_round_floats(v, ndigits) for v in value]
    if isinstance(value, dict):
        return {k: _round_floats(v, ndigits) for k, v in value.items()}
    return value


def _canonical(result) -> str:
    """The *answer* part of a result, as comparable JSON.

    ``stats`` is execution metadata (expansions, bound evaluations) that
    legitimately varies with the estimator in use.  ``entries`` hold one
    witness path per sub-interval, and on networks with co-optimal paths
    different (equally admissible) estimators may break the tie
    differently — so correctness is judged on the ``border`` function, the
    optimal travel time at every leaving instant, which any exact search
    must reproduce.  Floats are rounded to a microsecond-scale tolerance
    (values are minutes): a cold edge-function cache rebuilds functions
    over slightly different sub-ranges than a warm one and the answers
    drift at the 1e-12 level — real wrongness (a missed faster path) shows
    up orders of magnitude above the rounding.
    """
    doc = result.as_dict()
    doc.pop("stats", None)
    doc.pop("entries", None)
    return json.dumps(_round_floats(doc), sort_keys=True)


def _record_baseline(
    service, queries: Sequence[QuerySpec], deadline: float | None
) -> list[str | None]:
    """Fault-free baseline, sequential.  Two passes: the first warms the
    shared edge-function cache (a cold-cache answer can differ from the
    warm steady state by an ulp — functions built over slightly different
    sub-ranges), the second records the steady-state answers the chaos
    phase must reproduce.  ``None`` marks queries that are typed errors
    even without faults (e.g. no path)."""
    baseline: list[str | None] = []
    for record in (False, True):
        if record:
            baseline.clear()
            service.invalidate()  # force recomputation on the warm cache
        for spec in queries:
            request = QueryRequest(
                spec.source, spec.target, spec.interval, "allfp", deadline
            )
            try:
                response = service.query(request)
            except ReproError:
                if record:
                    baseline.append(None)
            else:
                if record:
                    baseline.append(_canonical(response.result))
    return baseline


def _replay(
    service,
    queries: Sequence[QuerySpec],
    baseline: list[str | None],
    report: ChaosReport,
    clients: int,
    deadline: float | None,
    join_timeout: float,
) -> None:
    """Concurrent replay classifying every outcome into the invariant's
    three legal buckets; anything else lands in ``report.violations``."""
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for i in range(offset, len(queries), clients):
            spec = queries[i]
            request = QueryRequest(
                spec.source, spec.target, spec.interval, "allfp", deadline
            )
            try:
                response = service.query(request)
            except ReproError as exc:
                name = type(exc).__name__
                with lock:
                    report.typed_errors[name] = (
                        report.typed_errors.get(name, 0) + 1
                    )
            except BaseException as exc:
                with lock:
                    report.violations.append(
                        f"query {i} ({spec.source}->{spec.target}): untyped "
                        f"{type(exc).__name__}: {exc}"
                    )
            else:
                answer = _canonical(response.result)
                wrong = (
                    not response.stale
                    and baseline[i] is not None
                    and answer != baseline[i]
                )
                with lock:
                    if wrong:
                        report.violations.append(
                            f"query {i} ({spec.source}->{spec.target}): answer "
                            f"differs from fault-free baseline "
                            f"(degraded={response.degraded})"
                        )
                    else:
                        report.ok += 1
                        if response.degraded:
                            report.degraded += 1
                        if response.stale:
                            report.stale += 1

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"chaos-client-{i}", daemon=True
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    deadline_at = time.monotonic() + join_timeout
    for t in threads:
        t.join(max(0.0, deadline_at - time.monotonic()))
    for t in threads:
        if t.is_alive():
            report.violations.append(
                f"hang: {t.name} still running after {join_timeout:.0f}s"
            )


def run_chaos(
    service: AllFPService,
    queries: Sequence[QuerySpec],
    plan: reliability.FaultPlan,
    clients: int = 4,
    deadline: float | None = None,
    join_timeout: float = DEFAULT_JOIN_TIMEOUT,
) -> ChaosReport:
    """Baseline the workload fault-free, then replay it under ``plan``.

    The service must be fault-free when called (any previously installed
    injector is the caller's to remove).  The injector is installed only
    for the chaos phase and removed in a ``finally``, so a crashing harness
    never leaves the process poisoned.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    report = ChaosReport(requests=len(queries))
    baseline = _record_baseline(service, queries, deadline)

    # Drop cached results so the chaos phase actually recomputes.
    service.invalidate()

    # Phase 2: concurrent replay under the installed plan.
    injector = reliability.install(plan)
    started = time.monotonic()
    try:
        _replay(
            service, queries, baseline, report, clients, deadline, join_timeout
        )
    finally:
        reliability.uninstall()
    report.wall_seconds = time.monotonic() - started
    report.fault_events = injector.fired
    return report


def run_shard_chaos(
    service,
    queries: Sequence[QuerySpec],
    plan: reliability.FaultPlan | None = None,
    clients: int = 4,
    deadline: float | None = None,
    kill_shard: int | None = None,
    kill_delay: float = 0.05,
    join_timeout: float = DEFAULT_JOIN_TIMEOUT,
) -> ChaosReport:
    """The chaos invariant at shard granularity, against a
    :class:`~repro.shard.tier.ShardedService`.

    Same three-phase shape as :func:`run_chaos`, with two differences:

    * the fault ``plan`` (when given) is broadcast into the worker
      processes, not installed in the router's process;
    * ``kill_delay`` seconds into the replay, one worker is hard-killed
      mid-run — ``kill_shard`` picks which, defaulting to the shard that
      owns the most workload keys so failover is actually exercised.

    Failover answers must still equal the baseline (every worker holds
    the full network), so the invariant is unchanged: correct, typed, or
    flagged degraded — never a hang or a silent wrong answer.  The kill
    itself counts as one fault event on top of whatever the plan fired
    inside the workers.
    """
    from ..shard.ring import routing_key

    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    report = ChaosReport(requests=len(queries))
    baseline = _record_baseline(service, queries, deadline)
    service.invalidate()

    if kill_shard is None:
        owners: dict[int, int] = {}
        for spec in queries:
            request = QueryRequest(
                spec.source, spec.target, spec.interval, "allfp", deadline
            )
            owner = service.ring.preference(routing_key(request))[0]
            owners[owner] = owners.get(owner, 0) + 1
        kill_shard = max(owners, key=owners.get)

    if plan is not None:
        service.install_faults(plan)
    killer = threading.Timer(kill_delay, service.kill_shard, args=(kill_shard,))
    killer.daemon = True
    started = time.monotonic()
    try:
        killer.start()
        _replay(
            service, queries, baseline, report, clients, deadline, join_timeout
        )
    finally:
        killer.cancel()
        fired = 0
        if plan is not None:
            replies = service.uninstall_faults() or {}
            fired = sum(
                reply.get("fired", 0)
                for reply in replies.values()
                if reply is not None
            )
    report.wall_seconds = time.monotonic() - started
    # the kill is one fault event, on top of worker-side plan firings
    # (collected from the uninstall_faults replies; a restarted worker's
    # count starts over, so this is a lower bound under restarts).
    report.fault_events = 1 + fired
    return report


def _record_version_baselines(
    network,
    trace,
    queries: Sequence[QuerySpec],
    deadline: float | None,
) -> list[list[str | None]]:
    """Fault-free reference answers at every network version the trace
    produces: ``baselines[k]`` holds the canonical answer to each query
    against the network with exactly the first ``k`` trace batches
    applied.  A throwaway single-process service answers them — any
    admissible estimator is exact, so the live service's (delta-refreshed)
    tables need not be reproduced here."""
    import copy as _copy

    from .service import ServiceConfig
    from .updates import apply_batch

    ref_net = _copy.deepcopy(network)
    baselines: list[list[str | None]] = []
    for k in range(len(trace) + 1):
        ref = AllFPService(ref_net, config=ServiceConfig(workers=2))
        try:
            row: list[str | None] = []
            for spec in queries:
                request = QueryRequest(
                    spec.source, spec.target, spec.interval, "allfp", deadline
                )
                try:
                    row.append(_canonical(ref.query(request).result))
                except ReproError:
                    row.append(None)
        finally:
            ref.close()
        baselines.append(row)
        if k < len(trace):
            apply_batch(ref_net, trace[k].batch)
    return baselines


def run_mutation_chaos(
    service,
    queries: Sequence[QuerySpec],
    trace,
    plan: reliability.FaultPlan | None = None,
    clients: int = 4,
    deadline: float | None = None,
    speed: float = 1.0,
    join_timeout: float = DEFAULT_JOIN_TIMEOUT,
) -> ChaosReport:
    """The chaos invariant *under live mutation*: replay ``queries``
    concurrently with an incident ``trace`` (a sequence of
    :class:`~repro.serve.updates.TraceEvent`), optionally with a fault
    ``plan`` installed, and hold every answer to the **versioned**
    byte-match contract:

        a non-stale answer claiming network version ``v`` must be
        byte-identical to a fault-free re-execution against the network
        with exactly the first ``v`` update batches applied.

    Stale-cache fallbacks (``stale=True`` / ``version == -1``) are exempt
    — they advertise their staleness, which is the contract's other half.
    Degraded-but-fresh answers are **not** exempt: the fallback bound is
    admissible, so they must still match the baseline for their version.

    Client threads loop over the workload until the whole trace has been
    applied, then complete one final full pass, so every version actually
    serves queries.  ``speed`` compresses trace offsets (``speed=10``
    fires a ``t=5s`` event at 0.5s).  ``service`` may be a single
    :class:`AllFPService` or a sharded tier — anything with
    ``apply_updates``/``net_version``; the plan is broadcast via
    ``install_faults`` when the service supports it, else installed
    in-process.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed:g}")
    trace = list(trace)
    base_version = getattr(service, "net_version", 0)
    network = getattr(service, "_network")
    baselines = _record_version_baselines(network, trace, queries, deadline)

    report = ChaosReport()
    lock = threading.Lock()
    trace_done = threading.Event()

    def applier() -> None:
        t0 = time.monotonic()
        try:
            for event in trace:
                delay = event.at / speed - (time.monotonic() - t0)
                if delay > 0:
                    time.sleep(delay)
                try:
                    service.apply_updates(event.batch)
                except ReproError as exc:
                    name = f"apply:{type(exc).__name__}"
                    with lock:
                        report.typed_errors[name] = (
                            report.typed_errors.get(name, 0) + 1
                        )
                else:
                    with lock:
                        report.versions += 1
                        report.mutations_applied += len(event.batch)
        finally:
            trace_done.set()

    def classify(i: int, spec: QuerySpec, response) -> None:
        answer = _canonical(response.result)
        version = getattr(response, "version", -1)
        with lock:
            report.requests += 1
            if response.stale or version < 0:
                # Advertised-stale fallback: exempt from the byte-match
                # contract, but it must carry its flags.
                if not response.stale:
                    report.violations.append(
                        f"query {i} ({spec.source}->{spec.target}): "
                        f"unversioned answer without the stale flag"
                    )
                    return
                report.ok += 1
                report.degraded += 1 if response.degraded else 0
                report.stale += 1
                return
            idx = version - base_version
            if not 0 <= idx < len(baselines):
                report.violations.append(
                    f"query {i} ({spec.source}->{spec.target}): claims "
                    f"unknown network version {version} "
                    f"(base {base_version}, trace {len(trace)} batches)"
                )
                return
            if baselines[idx][i] is not None and answer != baselines[idx][i]:
                report.violations.append(
                    f"query {i} ({spec.source}->{spec.target}): answer at "
                    f"version {version} differs from fault-free "
                    f"re-execution at that version "
                    f"(degraded={response.degraded})"
                )
                return
            report.ok += 1
            if response.degraded:
                report.degraded += 1

    def worker(offset: int) -> None:
        final_pass = False
        while True:
            if trace_done.is_set():
                final_pass = True
            for i in range(offset, len(queries), clients):
                spec = queries[i]
                request = QueryRequest(
                    spec.source, spec.target, spec.interval, "allfp", deadline
                )
                try:
                    response = service.query(request)
                except ReproError as exc:
                    name = type(exc).__name__
                    with lock:
                        report.requests += 1
                        report.typed_errors[name] = (
                            report.typed_errors.get(name, 0) + 1
                        )
                except BaseException as exc:
                    with lock:
                        report.requests += 1
                        report.violations.append(
                            f"query {i} ({spec.source}->{spec.target}): "
                            f"untyped {type(exc).__name__}: {exc}"
                        )
                else:
                    classify(i, spec, response)
            if final_pass:
                return

    # Drop cached results so the replay actually recomputes.
    service.invalidate()

    injector = None
    installed_remote = False
    if plan is not None:
        install = getattr(service, "install_faults", None)
        if callable(install):
            install(plan)
            installed_remote = True
        else:
            injector = reliability.install(plan)

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"mutation-chaos-client-{i}",
            daemon=True,
        )
        for i in range(clients)
    ]
    applier_thread = threading.Thread(
        target=applier, name="mutation-chaos-applier", daemon=True
    )
    started = time.monotonic()
    try:
        applier_thread.start()
        for t in threads:
            t.start()
        deadline_at = time.monotonic() + join_timeout
        for t in [applier_thread, *threads]:
            t.join(max(0.0, deadline_at - time.monotonic()))
        for t in [applier_thread, *threads]:
            if t.is_alive():
                report.violations.append(
                    f"hang: {t.name} still running after {join_timeout:.0f}s"
                )
    finally:
        fired = 0
        if installed_remote:
            replies = service.uninstall_faults() or {}
            fired = sum(
                reply.get("fired", 0)
                for reply in replies.values()
                if reply is not None
            )
        elif injector is not None:
            reliability.uninstall()
            fired = injector.fired
    report.wall_seconds = time.monotonic() - started
    report.fault_events = fired
    return report
