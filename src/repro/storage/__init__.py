"""CCAM — the Connectivity-Clustered Access Method substrate (system S6).

The paper stores the road network on disk with CCAM [18]: node records are
clustered into fixed-size pages following the Hilbert one-dimensional
ordering of node locations (heuristically preserving connectivity), and a
B+-tree over node ids locates any node's page.  The query algorithms access
the network exclusively through ``find_node`` / ``get_successors``, so page
I/O is measurable.

This package is a from-scratch reimplementation:

* :mod:`~repro.storage.hilbert` — Hilbert space-filling curve.
* :mod:`~repro.storage.partition` — packing node sequences into pages
  (Hilbert-sequential and connectivity-BFS strategies).
* :mod:`~repro.storage.pages` — binary page/record codecs.
* :mod:`~repro.storage.bptree` — a page-based B+-tree (insert / search /
  range scan / lazy delete).
* :mod:`~repro.storage.buffer` — LRU buffer manager with I/O counters.
* :mod:`~repro.storage.ccam` — the store: build from a network, open from
  disk, and the accessor surface the engines consume.
"""

from .hilbert import hilbert_index, hilbert_value
from .buffer import BufferManager, MemoryPageStore, FilePageStore
from .bptree import BPlusTree
from .partition import pack_hilbert, pack_connectivity, clustering_quality
from .ccam import CCAMStore

__all__ = [
    "hilbert_index",
    "hilbert_value",
    "BufferManager",
    "MemoryPageStore",
    "FilePageStore",
    "BPlusTree",
    "pack_hilbert",
    "pack_connectivity",
    "clustering_quality",
    "CCAMStore",
]
