"""Hilbert space-filling curve.

CCAM generates the one-dimensional ordering of nodes from the Hilbert values
of their locations (§2.2 of the paper): nearby points in the plane receive
nearby curve indices, so cutting the sorted sequence into pages yields
spatially — and, on a road network, topologically — coherent clusters.

The conversion below is the classical iterative rotate-and-flip algorithm
(Hamilton's / Wikipedia's ``xy2d``), implemented for a ``2^order × 2^order``
grid.
"""

from __future__ import annotations

from ..exceptions import StorageError

#: Default grid refinement: 2^16 cells per axis resolves any metro network.
DEFAULT_ORDER = 16


def hilbert_index(order: int, x: int, y: int) -> int:
    """Curve index of integer cell ``(x, y)`` on a ``2^order`` grid.

    >>> [hilbert_index(1, x, y) for y in (0, 1) for x in (0, 1)]
    [0, 3, 1, 2]
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise StorageError(f"cell ({x}, {y}) outside 2^{order} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_point(order: int, d: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_index`: the cell at curve position ``d``."""
    side = 1 << order
    if not 0 <= d < side * side:
        raise StorageError(f"index {d} outside 2^{2 * order} curve")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return (x, y)


def hilbert_value(
    x: float,
    y: float,
    bbox: tuple[float, float, float, float],
    order: int = DEFAULT_ORDER,
) -> int:
    """Curve index of a real-valued point within a bounding box.

    Points are binned onto the ``2^order`` grid; coordinates outside the box
    clamp to its edge (generators jitter node positions, so a point can sit
    epsilon outside the nominal box).
    """
    min_x, min_y, max_x, max_y = bbox
    side = 1 << order
    span_x = max(max_x - min_x, 1e-12)
    span_y = max(max_y - min_y, 1e-12)
    cx = int((x - min_x) / span_x * side)
    cy = int((y - min_y) / span_y * side)
    cx = min(max(cx, 0), side - 1)
    cy = min(max(cy, 0), side - 1)
    return hilbert_index(order, cx, cy)
