"""Binary codecs for node records and data pages.

A node's record (the paper's ``info_i``, §2.2) stores its location plus its
adjacency list — for each neighbour the Euclidean/road distance and a
reference into the pattern catalog (patterns are heavily shared across
edges, so they are interned once per database, not per edge).

Record layout (little-endian):

    ``node_id:u32 | x:f64 | y:f64 | n:u16 | n × (target:u32, dist:f64, pat:u16, class:u8)``

Data-page layout:

    ``count:u16 | count × record``

Records are variable length, so slot access decodes sequentially; with the
paper's 2048-byte pages a full page holds at most ~90 records, making this
cheap.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..exceptions import PageOverflowError, StorageError

_RECORD_HEAD = struct.Struct("<IddH")
_NEIGHBOR = struct.Struct("<IdHB")
_PAGE_HEAD = struct.Struct("<H")

#: Sentinel for "no road class recorded".
NO_CLASS = 0xFF


@dataclass(frozen=True)
class NeighborRef:
    """One adjacency entry: target node, road distance, interned pattern."""

    target: int
    distance: float
    pattern_id: int
    class_id: int = NO_CLASS


@dataclass(frozen=True)
class NodeRecord:
    """The decoded ``info_i`` of one node."""

    node_id: int
    x: float
    y: float
    neighbors: tuple[NeighborRef, ...]

    @property
    def location(self) -> tuple[float, float]:
        return (self.x, self.y)


def record_size(neighbor_count: int) -> int:
    """Encoded size in bytes of a record with the given adjacency length."""
    return _RECORD_HEAD.size + neighbor_count * _NEIGHBOR.size


def encode_record(record: NodeRecord) -> bytes:
    """Serialise one node record."""
    if len(record.neighbors) > 0xFFFF:
        raise StorageError(f"node {record.node_id}: too many neighbours")
    parts = [
        _RECORD_HEAD.pack(record.node_id, record.x, record.y, len(record.neighbors))
    ]
    parts.extend(
        _NEIGHBOR.pack(n.target, n.distance, n.pattern_id, n.class_id)
        for n in record.neighbors
    )
    return b"".join(parts)


def decode_record(data: bytes, offset: int) -> tuple[NodeRecord, int]:
    """Deserialise the record starting at ``offset``; returns the next offset."""
    node_id, x, y, count = _RECORD_HEAD.unpack_from(data, offset)
    offset += _RECORD_HEAD.size
    neighbors = []
    for _ in range(count):
        target, distance, pattern_id, class_id = _NEIGHBOR.unpack_from(
            data, offset
        )
        neighbors.append(NeighborRef(target, distance, pattern_id, class_id))
        offset += _NEIGHBOR.size
    return (NodeRecord(node_id, x, y, tuple(neighbors)), offset)


def page_payload(page_size: int) -> int:
    """Usable record bytes in a data page of the given size."""
    return page_size - _PAGE_HEAD.size


def encode_data_page(records: list[bytes], page_size: int) -> bytes:
    """Assemble encoded records into one page image."""
    body = b"".join(records)
    if _PAGE_HEAD.size + len(body) > page_size:
        raise PageOverflowError(
            f"{len(records)} records ({len(body)} B) exceed page size {page_size}"
        )
    return (_PAGE_HEAD.pack(len(records)) + body).ljust(page_size, b"\x00")


def decode_data_page(data: bytes) -> list[NodeRecord]:
    """Decode every record in a page image."""
    (count,) = _PAGE_HEAD.unpack_from(data, 0)
    offset = _PAGE_HEAD.size
    records = []
    for _ in range(count):
        record, offset = decode_record(data, offset)
        records.append(record)
    return records


def decode_record_at_slot(data: bytes, slot: int) -> NodeRecord:
    """Decode only the record at position ``slot`` within a page image."""
    (count,) = _PAGE_HEAD.unpack_from(data, 0)
    if not 0 <= slot < count:
        raise StorageError(f"slot {slot} out of range (page holds {count})")
    offset = _PAGE_HEAD.size
    for _ in range(slot):
        _node_id, _x, _y, n = _RECORD_HEAD.unpack_from(data, offset)
        offset += _RECORD_HEAD.size + n * _NEIGHBOR.size
    record, _next = decode_record(data, offset)
    return record
