"""The CCAM store: build a disk database from a network, serve and update it.

File layout (version 2; all regions page-aligned to one ``page_size``):

* file page 0 — fixed header (struct) identifying the page region,
* file pages ``1 .. P`` — one shared page region holding data pages (node
  records) and B+-tree pages (key = node id, value =
  ``region_page_no << 16 | slot``); a build writes data pages first and the
  bulk-loaded tree after them, updates may interleave freely,
* a JSON metadata blob after the last page: the pattern catalog, the
  calendar, and summary statistics.  Rewritten on :meth:`flush` when the
  store is writable (appending pages relocates it).

Queries open the file behind one LRU :class:`~repro.storage.buffer.BufferManager`
(data and index pages share it, as they would share a disk and buffer pool),
and expose the same accessor surface as the in-memory network — ``calendar``,
``location``, ``outgoing``, ``find_edge``, ``max_speed`` — plus the paper's
``find_node`` / ``get_successors`` names and I/O counters.  The query
engines therefore run unchanged against disk, and their
``stats.page_reads`` report physical page I/O.

Opened with ``writable=True`` the store additionally supports the paper's
"appropriate operations to update the network" (§2.2): edge pattern
updates (the FATES-style traffic refresh), edge insertion/removal, and node
insertion/removal — node placement follows CCAM's connectivity heuristic
(prefer the page already holding the most graph neighbours).

Engines cache per-edge arrival functions, so construct engines *after*
applying updates (or construct fresh ones).
"""

from __future__ import annotations

import json
import math
import struct
from pathlib import Path
from typing import Iterable, Literal

from .. import reliability
from ..exceptions import (
    EdgeNotFoundError,
    NetworkError,
    NodeNotFoundError,
    PageOverflowError,
    StorageError,
)
from ..network.model import CapeCodNetwork, Edge
from ..patterns.categories import Calendar, DayCategorySet
from ..patterns.schema import RoadClass
from ..patterns.speed import CapeCodPattern, DailySpeedPattern
from .bptree import BPlusTree
from .buffer import (
    DEFAULT_BUFFER_PAGES,
    DEFAULT_PAGE_SIZE,
    BufferManager,
    FilePageStore,
    MemoryPageStore,
)
from .pages import (
    NO_CLASS,
    NeighborRef,
    NodeRecord,
    decode_data_page,
    decode_record_at_slot,
    encode_data_page,
    encode_record,
    page_payload,
    record_size,
)
from .partition import clustering_quality, pack_connectivity, pack_hilbert

_MAGIC = b"CCAMRPR2"
_HEADER = struct.Struct("<8sIIIIIQQ")
# magic, version, page_size, region_pages, reserved, tree_root, meta_off, meta_len
_VERSION = 2

_CALENDAR_SAMPLE_DAYS = 366

Strategy = Literal["hilbert", "connectivity"]

_ROAD_CLASSES = list(RoadClass)


class CCAMStore:
    """A disk-backed CapeCod network (read-only by default).

    Create databases with :meth:`build`, open them with the constructor or
    :meth:`open`.  Instances are context managers; writable stores persist
    header/metadata on :meth:`flush` and :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        writable: bool = False,
    ) -> None:
        self._path = Path(path)
        self._writable = writable
        with open(self._path, "rb") as f:
            header = f.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise StorageError(f"{path}: truncated CCAM header")
        (
            magic,
            version,
            page_size,
            region_pages,
            _reserved,
            tree_root,
            meta_off,
            meta_len,
        ) = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError(f"{path}: not a CCAM database")
        if version != _VERSION:
            raise StorageError(f"{path}: unsupported CCAM version {version}")
        self._page_size = page_size
        self._file_store = FilePageStore(
            self._path, page_size, 1 + region_pages, writable=writable
        )
        self._buffer = BufferManager(self._file_store, buffer_pages)
        self._region = _Region(self._buffer, base=1, writable=writable)
        self._tree = BPlusTree(self._region, page_size, root=tree_root)
        with open(self._path, "rb") as f:
            f.seek(meta_off)
            meta = json.loads(f.read(meta_len).decode("utf-8"))
        self._patterns = [_pattern_from_json(p) for p in meta["patterns"]]
        self._pattern_ids = {p: i for i, p in enumerate(self._patterns)}
        categories = DayCategorySet(meta["categories"])
        self._calendar = Calendar.periodic(categories, meta["calendar_days"])
        self._calendar_days = meta["calendar_days"]
        self._node_count = meta["node_count"]
        self._edge_count = meta["edge_count"]
        self._max_speed = meta["max_speed"]
        self._min_speed = meta["min_speed"]
        self.build_info = meta.get("build", {})
        self._dirty = False

    @classmethod
    def open(
        cls,
        path: str | Path,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        writable: bool = False,
    ) -> "CCAMStore":
        """Alias of the constructor, for symmetry with :meth:`build`."""
        return cls(path, buffer_pages, writable)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: CapeCodNetwork,
        path: str | Path,
        page_size: int = DEFAULT_PAGE_SIZE,
        strategy: Strategy = "connectivity",
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
    ) -> "CCAMStore":
        """Write a CCAM database for ``network`` and open it (read-only)."""
        pattern_ids: dict[CapeCodPattern, int] = {}
        patterns: list[CapeCodPattern] = []

        def pattern_id(p: CapeCodPattern) -> int:
            idx = pattern_ids.get(p)
            if idx is None:
                idx = len(patterns)
                pattern_ids[p] = idx
                patterns.append(p)
            return idx

        def class_id(road_class: RoadClass | None) -> int:
            if road_class is None:
                return NO_CLASS
            return _ROAD_CLASSES.index(road_class)

        records: dict[int, bytes] = {}
        for node in network.nodes():
            neighbors = tuple(
                NeighborRef(
                    e.target, e.distance, pattern_id(e.pattern), class_id(e.road_class)
                )
                for e in network.outgoing(node.id)
            )
            records[node.id] = encode_record(
                NodeRecord(node.id, node.x, node.y, neighbors)
            )

        payload = page_payload(page_size)
        size_of = lambda nid: len(records[nid])
        if strategy == "hilbert":
            assignment = pack_hilbert(network, size_of, payload)
        elif strategy == "connectivity":
            assignment = pack_connectivity(network, size_of, payload)
        else:
            raise StorageError(f"unknown packing strategy {strategy!r}")

        store = MemoryPageStore(page_size)
        directory: list[tuple[int, int]] = []  # (node_id, page<<16|slot)
        for members in assignment:
            page_no = store.allocate()
            store.write(
                page_no,
                encode_data_page([records[nid] for nid in members], page_size),
            )
            for slot, nid in enumerate(members):
                if slot > 0xFFFF:
                    raise StorageError("slot overflow")
                directory.append((nid, (page_no << 16) | slot))
        directory.sort()
        data_pages = store.page_count

        tree = BPlusTree.bulk_load(store, page_size, directory)

        calendar = network.calendar
        meta = {
            "patterns": [_pattern_to_json(p) for p in patterns],
            "categories": list(calendar.categories.names),
            "calendar_days": [
                calendar.category_for_day(d)
                for d in range(_CALENDAR_SAMPLE_DAYS)
            ],
            "node_count": network.node_count,
            "edge_count": network.edge_count,
            "max_speed": network.max_speed(),
            "min_speed": network.min_speed(),
            "build": {
                "strategy": strategy,
                "clustering_quality": clustering_quality(network, assignment),
                "data_pages": data_pages,
                "tree_pages": store.page_count - data_pages,
            },
        }
        meta_blob = json.dumps(meta).encode("utf-8")
        meta_off = (1 + store.page_count) * page_size
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            page_size,
            store.page_count,
            0,
            tree.root_page,
            meta_off,
            len(meta_blob),
        )
        with open(path, "wb") as f:
            f.write(header.ljust(page_size, b"\x00"))
            store.dump(f)
            f.write(meta_blob)
        return cls(path, buffer_pages)

    # ------------------------------------------------------------------
    # Accessor surface (shared with CapeCodNetwork)
    # ------------------------------------------------------------------
    @property
    def calendar(self) -> Calendar:
        return self._calendar

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def edge_count(self) -> int:
        return self._edge_count

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def writable(self) -> bool:
        return self._writable

    def _locator(self, node_id: int) -> tuple[int, int]:
        locator = self._tree.get(node_id)
        if locator is None:
            raise NodeNotFoundError(node_id)
        return (locator >> 16, locator & 0xFFFF)

    def find_node(self, node_id: int) -> NodeRecord:
        """The paper's ``FindNode``: B+-tree lookup, then one data-page read."""
        if reliability.is_active():
            reliability.fire("repro.storage.ccam.find_node")
        page_no, slot = self._locator(node_id)
        data = self._region.read(page_no)
        return decode_record_at_slot(data, slot)

    def location(self, node_id: int) -> tuple[float, float]:
        return self.find_node(node_id).location

    def euclidean(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (miles)."""
        ax, ay = self.location(a)
        bx, by = self.location(b)
        return math.hypot(ax - bx, ay - by)

    def _edge_from_ref(self, source: int, ref: NeighborRef) -> Edge:
        return Edge(
            source,
            ref.target,
            ref.distance,
            self._patterns[ref.pattern_id],
            None if ref.class_id == NO_CLASS else _ROAD_CLASSES[ref.class_id],
        )

    def outgoing(self, node_id: int) -> list[Edge]:
        """The paper's ``GetSuccessor``: the node's adjacency as edges."""
        record = self.find_node(node_id)
        return [self._edge_from_ref(node_id, ref) for ref in record.neighbors]

    get_successors = outgoing

    def find_edge(self, source: int, target: int) -> Edge:
        for edge in self.outgoing(source):
            if edge.target == target:
                return edge
        raise EdgeNotFoundError(source, target)

    def max_speed(self) -> float:
        return self._max_speed

    def min_speed(self) -> float:
        return self._min_speed

    def node_ids(self):
        """All node ids in key order (a full B+-tree leaf scan)."""
        return (key for key, _v in self._tree.items())

    # ------------------------------------------------------------------
    # Update operations (§2.2: "operations to update the network")
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if not self._writable:
            raise StorageError(
                "store opened read-only; open with writable=True to update"
            )

    def _validate_pattern(self, pattern: CapeCodPattern) -> None:
        """Reject malformed patterns *before* any page or intern mutation.

        A bad pattern must surface as one typed :class:`NetworkError` —
        never a half-written record or a poisoned pattern table.
        """
        if not isinstance(pattern, CapeCodPattern):
            raise NetworkError(
                f"expected a CapeCodPattern, got {type(pattern).__name__}"
            )
        if not pattern.covers(self._calendar.categories):
            raise NetworkError(
                f"pattern categories {pattern.categories} do not cover the "
                f"store calendar {tuple(self._calendar.categories.names)}"
            )
        if pattern.min_speed() <= 0:
            raise NetworkError(
                f"pattern has non-positive speed {pattern.min_speed():g} mpm"
            )

    def _pattern_id(self, pattern: CapeCodPattern) -> int:
        idx = self._pattern_ids.get(pattern)
        if idx is None:
            idx = len(self._patterns)
            self._patterns.append(pattern)
            self._pattern_ids[pattern] = idx
            self._max_speed = max(self._max_speed, pattern.max_speed())
            self._min_speed = min(self._min_speed, pattern.min_speed())
        return idx

    def _page_records(self, page_no: int) -> list[NodeRecord]:
        return decode_data_page(self._region.read(page_no))

    def _page_free(self, page_no: int) -> int:
        used = sum(
            record_size(len(r.neighbors)) for r in self._page_records(page_no)
        )
        return page_payload(self._page_size) - used

    def _write_page(self, page_no: int, records: list[NodeRecord]) -> None:
        """Rewrite a data page and refresh every member's tree locator."""
        image = encode_data_page(
            [encode_record(r) for r in records], self._page_size
        )
        self._region.write(page_no, image)
        for slot, record in enumerate(records):
            self._tree.insert(record.node_id, (page_no << 16) | slot)
        self._dirty = True

    def _mutate_record(
        self, node_id: int, new_neighbors: tuple[NeighborRef, ...]
    ) -> None:
        """Replace a node's adjacency, relocating its record on overflow."""
        page_no, slot = self._locator(node_id)
        records = self._page_records(page_no)
        old = records[slot]
        updated = NodeRecord(old.node_id, old.x, old.y, new_neighbors)
        records[slot] = updated
        try:
            self._write_page(page_no, records)
            return
        except PageOverflowError:
            pass
        # Evict the grown record and place it elsewhere.
        del records[slot]
        self._write_page(page_no, records)
        self._place_record(updated, exclude_page=page_no)

    def _place_record(
        self, record: NodeRecord, exclude_page: int | None = None
    ) -> None:
        """CCAM's connectivity placement: prefer the page already holding
        the most of the record's graph neighbours, given free space."""
        needed = record_size(len(record.neighbors))
        if needed > page_payload(self._page_size):
            raise PageOverflowError(
                f"record of node {record.node_id} exceeds the page payload"
            )
        counts: dict[int, int] = {}
        for ref in record.neighbors:
            locator = self._tree.get(ref.target)
            if locator is None:
                continue
            counts[locator >> 16] = counts.get(locator >> 16, 0) + 1
        for page_no, _n in sorted(
            counts.items(), key=lambda item: -item[1]
        ):
            if page_no == exclude_page:
                continue
            if self._page_free(page_no) >= needed:
                records = self._page_records(page_no)
                records.append(record)
                self._write_page(page_no, records)
                return
        # No connected page has room: open a fresh data page.
        page_no = self._region.allocate()
        self._write_page(page_no, [record])

    def update_edge_pattern(
        self, source: int, target: int, pattern: CapeCodPattern
    ) -> None:
        """Replace one edge's speed pattern (a traffic-knowledge refresh)."""
        self._require_writable()
        self._validate_pattern(pattern)
        record = self.find_node(source)
        if not any(ref.target == target for ref in record.neighbors):
            raise EdgeNotFoundError(source, target)
        # Only now intern the pattern: a rejected update leaves the
        # pattern table exactly as it was.
        pattern_idx = self._pattern_id(pattern)
        new_refs = tuple(
            NeighborRef(ref.target, ref.distance, pattern_idx, ref.class_id)
            if ref.target == target
            else ref
            for ref in record.neighbors
        )
        self._mutate_record(source, new_refs)

    def insert_edge(
        self,
        source: int,
        target: int,
        distance: float,
        pattern: CapeCodPattern,
        road_class: RoadClass | None = None,
    ) -> None:
        """Add a directed edge between existing nodes."""
        self._require_writable()
        self._validate_pattern(pattern)
        self._locator(target)  # target must exist
        record = self.find_node(source)
        if any(ref.target == target for ref in record.neighbors):
            raise NetworkError(f"duplicate edge {source}->{target}")
        if distance < 0:
            raise NetworkError("negative edge length")
        class_id = NO_CLASS if road_class is None else _ROAD_CLASSES.index(road_class)
        new_refs = record.neighbors + (
            NeighborRef(target, distance, self._pattern_id(pattern), class_id),
        )
        self._mutate_record(source, new_refs)
        self._edge_count += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Remove a directed edge."""
        self._require_writable()
        record = self.find_node(source)
        new_refs = tuple(
            ref for ref in record.neighbors if ref.target != target
        )
        if len(new_refs) == len(record.neighbors):
            raise EdgeNotFoundError(source, target)
        self._mutate_record(source, new_refs)
        self._edge_count -= 1

    def insert_node(
        self,
        node_id: int,
        x: float,
        y: float,
        edges: Iterable[tuple[int, float, CapeCodPattern, RoadClass | None]] = (),
    ) -> None:
        """Add a node (with optional outgoing edges) via CCAM placement."""
        self._require_writable()
        if self._tree.get(node_id) is not None:
            raise NetworkError(f"node {node_id} already exists")
        refs = []
        for target, distance, pattern, road_class in edges:
            self._validate_pattern(pattern)
            self._locator(target)
            class_id = (
                NO_CLASS if road_class is None else _ROAD_CLASSES.index(road_class)
            )
            refs.append(
                NeighborRef(target, distance, self._pattern_id(pattern), class_id)
            )
        record = NodeRecord(node_id, float(x), float(y), tuple(refs))
        self._place_record(record)
        self._node_count += 1
        self._edge_count += len(refs)

    def remove_node(self, node_id: int) -> None:
        """Remove a node; its outgoing edges go with it.

        The caller must first remove edges *pointing at* the node (the
        store keeps no reverse index, mirroring the paper's storage model).
        """
        self._require_writable()
        page_no, slot = self._locator(node_id)
        records = self._page_records(page_no)
        removed = records.pop(slot)
        self._write_page(page_no, records)
        self._tree.delete(node_id)
        self._node_count -= 1
        self._edge_count -= len(removed.neighbors)
        self._dirty = True

    # ------------------------------------------------------------------
    # I/O accounting
    # ------------------------------------------------------------------
    @property
    def page_reads(self) -> int:
        """Physical page reads since open / the last reset."""
        return self._buffer.physical_reads

    @property
    def page_writes(self) -> int:
        return self._buffer.physical_writes

    @property
    def logical_reads(self) -> int:
        return self._buffer.logical_reads

    @property
    def buffer_hit_rate(self) -> float:
        return self._buffer.hit_rate

    def reset_io_counters(self) -> None:
        self._buffer.reset_counters()

    def drop_buffer(self) -> None:
        """Empty the buffer pool (cold-cache experiments)."""
        self._buffer.invalidate()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist header and metadata after updates."""
        if not self._writable or not self._dirty:
            return
        meta = {
            "patterns": [_pattern_to_json(p) for p in self._patterns],
            "categories": list(self._calendar.categories.names),
            "calendar_days": self._calendar_days,
            "node_count": self._node_count,
            "edge_count": self._edge_count,
            "max_speed": self._max_speed,
            "min_speed": self._min_speed,
            "build": self.build_info,
        }
        blob = json.dumps(meta).encode("utf-8")
        region_pages = self._file_store.page_count - 1
        meta_off = (1 + region_pages) * self._page_size
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            self._page_size,
            region_pages,
            0,
            self._tree.root_page,
            meta_off,
            len(blob),
        )
        self._file_store.write(0, header)
        self._file_store.flush()
        with open(self._path, "r+b") as f:
            f.seek(meta_off)
            f.write(blob)
            f.truncate(meta_off + len(blob))
        self._dirty = False

    def close(self) -> None:
        self.flush()
        self._file_store.close()

    def __enter__(self) -> "CCAMStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _Region:
    """Page-number translation onto the shared buffer (base offset)."""

    __slots__ = ("_buffer", "_base", "_writable")

    def __init__(
        self, buffer: BufferManager, base: int, writable: bool = False
    ) -> None:
        self._buffer = buffer
        self._base = base
        self._writable = writable

    def read(self, page_no: int) -> bytes:
        return self._buffer.read(self._base + page_no)

    def write(self, page_no: int, data: bytes) -> None:
        if not self._writable:
            raise StorageError("CCAM store opened read-only")
        self._buffer.write(self._base + page_no, data)

    def allocate(self) -> int:
        if not self._writable:
            raise StorageError("CCAM store opened read-only")
        return self._buffer.allocate() - self._base


def _pattern_to_json(pattern: CapeCodPattern) -> dict:
    return {
        category: list(pattern.daily(category).pieces)
        for category in pattern.categories
    }


def _pattern_from_json(data: dict) -> CapeCodPattern:
    return CapeCodPattern(
        {
            category: DailySpeedPattern([tuple(p) for p in pieces])
            for category, pieces in data.items()
        }
    )
