"""A page-based B+-tree mapping uint64 keys to uint64 values.

CCAM keeps a B+-tree over node ids so any node's page can be located in
O(log n) page reads (§2.2 of the paper).  This implementation stores its
nodes in fixed-size pages of any :class:`~repro.storage.buffer.PageStore`
(or anything exposing ``read``/``write``/``allocate``), so the same code
runs over RAM while building and over a buffered file while querying.

Supported operations: point search, ordered range scan (leaves are chained),
insert with split propagation, **lazy** delete (the key is removed from its
leaf; structural rebalancing is deferred — empty leaves are simply skipped
by scans — which is a common trade-off in practice and documented here),
and bottom-up bulk loading of a sorted sequence.

Page layout (little-endian):

* Leaf:     ``B'1' | count:u16 | next_leaf:u32 | count × (key:u64, value:u64)``
* Internal: ``B'0' | count:u16 | child0:u32    | count × (key:u64, child:u32)``

Internal-node semantics: ``key_i`` is the smallest key reachable through
``child_{i+1}``; a search for ``k`` descends into the rightmost child whose
separator key is ``<= k`` (``child0`` when ``k`` precedes every separator).
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..exceptions import StorageError

_HEADER = struct.Struct("<BHI")  # type, count, next/child0
_LEAF_ENTRY = struct.Struct("<QQ")  # key, value
_INNER_ENTRY = struct.Struct("<QI")  # key, child

_LEAF = 1
_INNER = 0
_NO_PAGE = 0xFFFFFFFF


class _Node:
    """Decoded form of one tree page."""

    __slots__ = ("kind", "keys", "values", "children", "next_leaf")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.keys: list[int] = []
        self.values: list[int] = []  # leaf payloads
        self.children: list[int] = []  # internal child page numbers
        self.next_leaf: int = _NO_PAGE

    @property
    def is_leaf(self) -> bool:
        return self.kind == _LEAF


def _decode(data: bytes) -> _Node:
    kind, count, extra = _HEADER.unpack_from(data, 0)
    node = _Node(kind)
    offset = _HEADER.size
    if kind == _LEAF:
        node.next_leaf = extra
        for _ in range(count):
            key, value = _LEAF_ENTRY.unpack_from(data, offset)
            node.keys.append(key)
            node.values.append(value)
            offset += _LEAF_ENTRY.size
    elif kind == _INNER:
        node.children.append(extra)
        for _ in range(count):
            key, child = _INNER_ENTRY.unpack_from(data, offset)
            node.keys.append(key)
            node.children.append(child)
            offset += _INNER_ENTRY.size
    else:
        raise StorageError(f"corrupt B+-tree page: type byte {kind}")
    return node


def _encode(node: _Node, page_size: int) -> bytes:
    parts = [
        _HEADER.pack(
            node.kind,
            len(node.keys),
            node.next_leaf if node.is_leaf else node.children[0],
        )
    ]
    if node.is_leaf:
        parts.extend(
            _LEAF_ENTRY.pack(k, v) for k, v in zip(node.keys, node.values)
        )
    else:
        parts.extend(
            _INNER_ENTRY.pack(k, c)
            for k, c in zip(node.keys, node.children[1:])
        )
    data = b"".join(parts)
    if len(data) > page_size:
        raise StorageError("B+-tree node overflow (capacity accounting bug)")
    return data.ljust(page_size, b"\x00")


class BPlusTree:
    """A B+-tree over a page store.

    Parameters
    ----------
    store:
        Object with ``read(page_no) -> bytes`` plus, for mutation,
        ``write(page_no, bytes)`` and ``allocate() -> int``.
    page_size:
        Must match the store's page size.
    root:
        Page number of an existing root (re-opening a persisted tree), or
        ``None`` to create a fresh empty tree (requires a writable store).
    """

    def __init__(self, store, page_size: int, root: int | None = None) -> None:
        self._store = store
        self._page_size = page_size
        self._leaf_capacity = (page_size - _HEADER.size) // _LEAF_ENTRY.size
        self._inner_capacity = (page_size - _HEADER.size) // _INNER_ENTRY.size
        if self._leaf_capacity < 2 or self._inner_capacity < 2:
            raise StorageError(f"page size {page_size} too small for a B+-tree")
        if root is None:
            root = store.allocate()
            store.write(root, _encode(_Node(_LEAF), page_size))
        self._root = root

    # ------------------------------------------------------------------
    @property
    def root_page(self) -> int:
        """Current root page number (persist this alongside the pages)."""
        return self._root

    @property
    def leaf_capacity(self) -> int:
        return self._leaf_capacity

    def _read(self, page_no: int) -> _Node:
        return _decode(self._store.read(page_no))

    def _write(self, page_no: int, node: _Node) -> None:
        self._store.write(page_no, _encode(node, self._page_size))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _descend(self, key: int) -> tuple[list[int], _Node]:
        """Path of page numbers from root to the leaf owning ``key``."""
        path = [self._root]
        node = self._read(self._root)
        while not node.is_leaf:
            idx = self._child_index(node, key)
            path.append(node.children[idx])
            node = self._read(path[-1])
        return path, node

    @staticmethod
    def _child_index(node: _Node, key: int) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: int) -> int | None:
        """The value stored under ``key``, or None."""
        _path, leaf = self._descend(key)
        idx = self._leaf_index(leaf, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @staticmethod
    def _leaf_index(leaf: _Node, key: int) -> int:
        lo, hi = 0, len(leaf.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if leaf.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def items(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, int]]:
        """Ordered ``(key, value)`` pairs with ``lo <= key <= hi``."""
        start = lo if lo is not None else 0
        _path, leaf = self._descend(start)
        idx = self._leaf_index(leaf, start)
        while True:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None and key > hi:
                    return
                yield (key, leaf.values[idx])
                idx += 1
            if leaf.next_leaf == _NO_PAGE:
                return
            leaf = self._read(leaf.next_leaf)
            idx = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite ``key``."""
        path, leaf = self._descend(key)
        idx = self._leaf_index(leaf, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            self._write(path[-1], leaf)
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        if len(leaf.keys) <= self._leaf_capacity:
            self._write(path[-1], leaf)
            return
        self._split_leaf(path, leaf)

    def _split_leaf(self, path: list[int], leaf: _Node) -> None:
        mid = len(leaf.keys) // 2
        right = _Node(_LEAF)
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right_page = self._store.allocate()
        leaf.next_leaf = right_page
        self._write(path[-1], leaf)
        self._write(right_page, right)
        self._insert_separator(path[:-1], right.keys[0], path[-1], right_page)

    def _insert_separator(
        self, path: list[int], key: int, left_page: int, right_page: int
    ) -> None:
        if not path:
            root = _Node(_INNER)
            root.children = [left_page, right_page]
            root.keys = [key]
            new_root = self._store.allocate()
            self._write(new_root, root)
            self._root = new_root
            return
        page_no = path[-1]
        node = self._read(page_no)
        idx = self._child_index(node, key)
        node.keys.insert(idx, key)
        node.children.insert(idx + 1, right_page)
        if len(node.keys) <= self._inner_capacity:
            self._write(page_no, node)
            return
        mid = len(node.keys) // 2
        promote = node.keys[mid]
        right = _Node(_INNER)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        right_no = self._store.allocate()
        self._write(page_no, node)
        self._write(right_no, right)
        self._insert_separator(path[:-1], promote, page_no, right_no)

    # ------------------------------------------------------------------
    # Delete (lazy)
    # ------------------------------------------------------------------
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True when it existed.

        Lazy: the entry leaves its leaf but pages are never merged or
        rebalanced — scans skip empty leaves via the sibling chain.
        """
        path, leaf = self._descend(key)
        idx = self._leaf_index(leaf, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        del leaf.keys[idx]
        del leaf.values[idx]
        self._write(path[-1], leaf)
        return True

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        store,
        page_size: int,
        items: list[tuple[int, int]],
        fill: float = 0.9,
    ) -> "BPlusTree":
        """Build a tree bottom-up from *sorted unique* ``(key, value)`` pairs.

        ``fill`` sets the leaf fill factor, leaving headroom for later
        inserts.  Used by the CCAM builder after the Hilbert ordering pass.
        """
        for i in range(1, len(items)):
            if items[i][0] <= items[i - 1][0]:
                raise StorageError("bulk_load needs strictly increasing keys")
        tree = cls(store, page_size)
        if not items:
            return tree
        per_leaf = max(2, int(tree._leaf_capacity * fill))
        leaves: list[tuple[int, int]] = []  # (first_key, page_no)
        chunks = [items[i : i + per_leaf] for i in range(0, len(items), per_leaf)]
        pages = [store.allocate() for _ in chunks]
        # Reuse the initial empty-root page as the first leaf.
        pages[0] = tree._root
        for chunk, page_no, next_no in zip(
            chunks, pages, pages[1:] + [_NO_PAGE]
        ):
            node = _Node(_LEAF)
            node.keys = [k for k, _v in chunk]
            node.values = [v for _k, v in chunk]
            node.next_leaf = next_no
            tree._write(page_no, node)
            leaves.append((chunk[0][0], page_no))
        # Build internal levels.
        level = leaves
        per_inner = max(2, int(tree._inner_capacity * fill))
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for i in range(0, len(level), per_inner + 1):
                group = level[i : i + per_inner + 1]
                node = _Node(_INNER)
                node.children = [page for _k, page in group]
                node.keys = [k for k, _page in group[1:]]
                page_no = store.allocate()
                tree._write(page_no, node)
                next_level.append((group[0][0], page_no))
            level = next_level
        tree._root = level[0][1]
        return tree

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate ordering and structural invariants (testing aid)."""
        self._check_node(self._root, None, None)
        keys = [k for k, _v in self.items()]
        if keys != sorted(set(keys)):
            raise StorageError("leaf chain out of order")

    def _check_node(
        self, page_no: int, lo: int | None, hi: int | None
    ) -> None:
        node = self._read(page_no)
        for key in node.keys:
            if lo is not None and key < lo:
                raise StorageError(f"key {key} below separator {lo}")
            if hi is not None and key >= hi:
                raise StorageError(f"key {key} at/above separator {hi}")
        if node.keys != sorted(node.keys):
            raise StorageError("node keys out of order")
        if not node.is_leaf:
            bounds = [lo] + list(node.keys) + [hi]
            for child, c_lo, c_hi in zip(
                node.children, bounds[:-1], bounds[1:]
            ):
                self._check_node(child, c_lo, c_hi)
