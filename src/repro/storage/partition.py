"""Packing node records into pages — CCAM's clustering heuristics.

CCAM's objective is to maximise the number of graph edges whose endpoints
live in the same page, so expanding a node tends to find its successors'
records already in the buffer.  Two packing strategies are provided:

* :func:`pack_hilbert` — the paper's description (§2.2): sort nodes by the
  Hilbert value of their location and cut the sequence greedily into pages.
* :func:`pack_connectivity` — a BFS-refined variant: pages are grown by
  breadth-first exploration seeded in Hilbert order, which trades a little
  spatial coherence for more intra-page edges (closer to the dynamic CCAM
  insertion heuristic of [18]).

:func:`clustering_quality` measures the achieved objective.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..exceptions import StorageError
from ..network.model import CapeCodNetwork
from .hilbert import hilbert_value


def _hilbert_order(network: CapeCodNetwork) -> list[int]:
    bbox = network.bounding_box()
    return sorted(
        network.node_ids(),
        key=lambda nid: hilbert_value(*network.location(nid), bbox),
    )


def pack_hilbert(
    network: CapeCodNetwork,
    record_size_of: Callable[[int], int],
    page_payload: int,
) -> list[list[int]]:
    """Greedy sequential packing of the Hilbert-ordered node sequence.

    ``record_size_of(node_id)`` gives the encoded record size in bytes;
    ``page_payload`` is the usable byte capacity of one page.
    """
    pages: list[list[int]] = []
    current: list[int] = []
    used = 0
    for nid in _hilbert_order(network):
        size = record_size_of(nid)
        if size > page_payload:
            raise StorageError(
                f"record of node {nid} ({size} B) exceeds page payload "
                f"({page_payload} B); increase the page size"
            )
        if used + size > page_payload and current:
            pages.append(current)
            current = []
            used = 0
        current.append(nid)
        used += size
    if current:
        pages.append(current)
    return pages


def pack_connectivity(
    network: CapeCodNetwork,
    record_size_of: Callable[[int], int],
    page_payload: int,
) -> list[list[int]]:
    """BFS page growing, seeded in Hilbert order.

    Each page starts from the first still-unassigned node in Hilbert order
    and greedily absorbs unassigned graph neighbours breadth-first until the
    page is full, preferring topological over purely spatial proximity.
    """
    order = _hilbert_order(network)
    assigned: set[int] = set()
    pages: list[list[int]] = []
    for seed in order:
        if seed in assigned:
            continue
        current: list[int] = []
        used = 0
        queue: deque[int] = deque([seed])
        enqueued = {seed}
        while queue:
            nid = queue.popleft()
            if nid in assigned:
                continue
            size = record_size_of(nid)
            if size > page_payload:
                raise StorageError(
                    f"record of node {nid} ({size} B) exceeds page payload "
                    f"({page_payload} B); increase the page size"
                )
            if used + size > page_payload:
                if not current:
                    raise StorageError("page payload too small for any record")
                continue  # keep draining the queue for smaller records
            current.append(nid)
            assigned.add(nid)
            used += size
            for edge in network.outgoing(nid):
                if edge.target not in assigned and edge.target not in enqueued:
                    queue.append(edge.target)
                    enqueued.add(edge.target)
            for edge in network.incoming(nid):
                if edge.source not in assigned and edge.source not in enqueued:
                    queue.append(edge.source)
                    enqueued.add(edge.source)
        pages.append(current)
    return pages


def clustering_quality(
    network: CapeCodNetwork, pages: list[list[int]]
) -> float:
    """Fraction of directed edges whose endpoints share a page (CCAM's CRR)."""
    page_of: dict[int, int] = {}
    for page_no, members in enumerate(pages):
        for nid in members:
            page_of[nid] = page_no
    total = 0
    intra = 0
    for edge in network.edges():
        total += 1
        if page_of.get(edge.source) == page_of.get(edge.target):
            intra += 1
    return intra / total if total else 0.0
