"""Page stores and the LRU buffer manager.

Everything below the B+-tree and the CCAM store speaks *pages*: fixed-size
byte blocks addressed by page number.  Two backing stores are provided —
in-memory (used while building a database) and file-backed (used to serve
queries) — plus :class:`BufferManager`, the LRU cache that fronts a store
and counts logical vs. physical reads.  The paper reports its experiments at
a 2048-byte page size; that is the default throughout.
"""

from __future__ import annotations

import io
from collections import OrderedDict
from pathlib import Path
from typing import BinaryIO, Protocol

from .. import reliability
from ..exceptions import StorageError

DEFAULT_PAGE_SIZE = 2048
DEFAULT_BUFFER_PAGES = 64


class PageStore(Protocol):
    """Minimal page-addressed storage interface."""

    @property
    def page_size(self) -> int: ...

    @property
    def page_count(self) -> int: ...

    def read(self, page_no: int) -> bytes: ...

    def write(self, page_no: int, data: bytes) -> None: ...

    def allocate(self) -> int: ...


class MemoryPageStore:
    """Pages in RAM — the build-time store, flushable to a file."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} too small")
        self._page_size = page_size
        self._pages: list[bytes] = []

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        self._pages.append(bytes(self._page_size))
        return len(self._pages) - 1

    def read(self, page_no: int) -> bytes:
        self._check(page_no)
        return self._pages[page_no]

    def write(self, page_no: int, data: bytes) -> None:
        self._check(page_no)
        if len(data) > self._page_size:
            raise StorageError(
                f"page payload {len(data)} exceeds page size {self._page_size}"
            )
        self._pages[page_no] = data.ljust(self._page_size, b"\x00")

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise StorageError(f"page {page_no} out of range")

    def dump(self, stream: BinaryIO) -> None:
        """Write all pages, in order, to a binary stream."""
        for page in self._pages:
            stream.write(page)


class FilePageStore:
    """Page store over a region of a file — read-only unless ``writable``.

    ``offset`` lets a page region coexist with other content (the header
    page before it, a metadata blob after it) in one database file.  In
    writable mode, :meth:`allocate` appends a zeroed page to the region
    (the caller is responsible for relocating any trailing non-page
    content, which the CCAM store does on flush).
    """

    def __init__(
        self,
        path: str | Path,
        page_size: int,
        page_count: int,
        offset: int = 0,
        writable: bool = False,
    ) -> None:
        self._path = Path(path)
        self._page_size = page_size
        self._page_count = page_count
        self._offset = offset
        self._writable = writable
        self._file: BinaryIO = open(self._path, "r+b" if writable else "rb")

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def writable(self) -> bool:
        return self._writable

    def read(self, page_no: int) -> bytes:
        if not 0 <= page_no < self._page_count:
            raise StorageError(f"page {page_no} out of range")
        self._file.seek(self._offset + page_no * self._page_size)
        data = self._file.read(self._page_size)
        if len(data) != self._page_size:
            raise StorageError(f"short read on page {page_no}")
        if reliability.is_active():
            data = reliability.fire("repro.storage.pages.read", data)
        return data

    def write(self, page_no: int, data: bytes) -> None:
        if not self._writable:
            raise StorageError("FilePageStore opened read-only")
        if not 0 <= page_no < self._page_count:
            raise StorageError(f"page {page_no} out of range")
        if len(data) > self._page_size:
            raise StorageError(
                f"page payload {len(data)} exceeds page size {self._page_size}"
            )
        self._file.seek(self._offset + page_no * self._page_size)
        self._file.write(data.ljust(self._page_size, b"\x00"))

    def allocate(self) -> int:
        if not self._writable:
            raise StorageError("FilePageStore opened read-only")
        page_no = self._page_count
        self._page_count += 1
        self._file.seek(self._offset + page_no * self._page_size)
        self._file.write(bytes(self._page_size))
        return page_no

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class BufferManager:
    """An LRU page cache fronting a page store, with I/O accounting.

    ``logical_reads`` counts every page request; ``physical_reads`` counts
    the requests that missed the cache and hit the underlying store — the
    disk-I/O figure the CCAM experiments report.
    """

    def __init__(
        self, store: PageStore, capacity: int = DEFAULT_BUFFER_PAGES
    ) -> None:
        if capacity < 1:
            raise StorageError("buffer capacity must be >= 1")
        self._store = store
        self._capacity = capacity
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.logical_reads = 0
        self.physical_reads = 0
        self.physical_writes = 0

    @property
    def page_size(self) -> int:
        return self._store.page_size

    @property
    def capacity(self) -> int:
        return self._capacity

    def read(self, page_no: int) -> bytes:
        self.logical_reads += 1
        cached = self._cache.get(page_no)
        if cached is not None:
            self._cache.move_to_end(page_no)
            return cached
        self.physical_reads += 1
        data = self._store.read(page_no)
        if reliability.is_active():
            data = reliability.fire("repro.storage.buffer.read", data)
        self._cache[page_no] = data
        if len(self._cache) > self._capacity:
            reliability.fire("repro.storage.buffer.evict")
            self._cache.popitem(last=False)
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write-through: update the store and keep the cache coherent."""
        self._store.write(page_no, data)
        self.physical_writes += 1
        padded = data.ljust(self.page_size, b"\x00")
        if page_no in self._cache:
            self._cache[page_no] = padded
            self._cache.move_to_end(page_no)

    def allocate(self) -> int:
        """Delegate page allocation to the underlying store."""
        return self._store.allocate()

    def invalidate(self, page_no: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        if page_no is None:
            self._cache.clear()
        else:
            self._cache.pop(page_no, None)

    def reset_counters(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.physical_writes = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of logical reads served from the cache."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads
