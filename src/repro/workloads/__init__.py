"""Query workload generation (system S11 in DESIGN.md)."""

from .queries import (
    QuerySpec,
    morning_rush_interval,
    evening_rush_interval,
    random_query,
    random_queries,
    distance_band_queries,
    poisson_arrivals,
)

__all__ = [
    "QuerySpec",
    "morning_rush_interval",
    "evening_rush_interval",
    "random_query",
    "random_queries",
    "distance_band_queries",
    "poisson_arrivals",
]
