"""Random query workloads mirroring the paper's experimental setup (§6).

Figure 9 poses 100 queries per configuration, *varying the Euclidean
distance between source and destination* from 1 to 8 miles, with a 3-hour
morning-rush leaving interval.  Figure 10 poses 100 queries at 7–8 miles
with a 2-hour rush interval.  The generators here reproduce those shapes on
any network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..exceptions import QueryError
from ..network.model import CapeCodNetwork
from ..timeutil import TimeInterval, hours, parse_clock


@dataclass(frozen=True)
class QuerySpec:
    """One (source, target, leaving interval) query instance."""

    source: int
    target: int
    interval: TimeInterval
    euclidean_distance: float

    def __str__(self) -> str:
        return (
            f"{self.source}->{self.target} during {self.interval} "
            f"(d_euc = {self.euclidean_distance:.2f} mi)"
        )


def morning_rush_interval(length_hours: float = 3.0, day: int = 0) -> TimeInterval:
    """A leaving interval starting at 7am (the Table 1 morning slowdown).

    ``day`` 0 is a Monday under the default workweek calendar, so the
    interval falls on a workday as the paper's experiments require.
    """
    start = parse_clock("7:00", day)
    return TimeInterval(start, start + hours(length_hours))


def evening_rush_interval(length_hours: float = 3.0, day: int = 0) -> TimeInterval:
    """A leaving interval starting at 4pm (the outbound slowdown window)."""
    start = parse_clock("16:00", day)
    return TimeInterval(start, start + hours(length_hours))


def random_query(
    network: CapeCodNetwork,
    interval: TimeInterval,
    rng: random.Random,
    min_distance: float = 0.0,
    max_distance: float = float("inf"),
    max_attempts: int = 2000,
) -> QuerySpec:
    """One random query whose endpoints are ``min..max`` miles apart."""
    ids = list(network.node_ids())
    if len(ids) < 2:
        raise QueryError("network too small to sample queries")
    for _ in range(max_attempts):
        source = rng.choice(ids)
        target = rng.choice(ids)
        if source == target:
            continue
        d = network.euclidean(source, target)
        if min_distance <= d <= max_distance:
            return QuerySpec(source, target, interval, d)
    raise QueryError(
        f"could not sample a query with distance in "
        f"[{min_distance}, {max_distance}] after {max_attempts} attempts"
    )


def random_queries(
    network: CapeCodNetwork,
    count: int,
    interval: TimeInterval,
    seed: int = 0,
    min_distance: float = 0.0,
    max_distance: float = float("inf"),
) -> list[QuerySpec]:
    """``count`` independent random queries in a distance band."""
    rng = random.Random(seed)
    return [
        random_query(network, interval, rng, min_distance, max_distance)
        for _ in range(count)
    ]


def poisson_arrivals(
    rate_qps: float, duration: float, seed: int = 0
) -> list[float]:
    """Arrival offsets (seconds in ``[0, duration)``) of a Poisson process.

    Inter-arrival gaps are exponential with mean ``1/rate_qps``, drawn from
    a seeded generator — so an open-loop load run is fully reproducible and
    tests never depend on wall-clock randomness.  The *number* of arrivals
    is itself random (Poisson with mean ``rate_qps * duration``); callers
    wanting a fixed count should truncate or extend ``duration``.
    """
    if rate_qps <= 0:
        raise QueryError(f"rate_qps must be > 0, got {rate_qps}")
    if duration < 0:
        raise QueryError(f"duration must be >= 0, got {duration}")
    rng = random.Random(seed)
    offsets: list[float] = []
    t = rng.expovariate(rate_qps)
    while t < duration:
        offsets.append(t)
        t += rng.expovariate(rate_qps)
    return offsets


def distance_band_queries(
    network: CapeCodNetwork,
    bands: list[tuple[float, float]],
    per_band: int,
    interval: TimeInterval,
    seed: int = 0,
) -> dict[tuple[float, float], list[QuerySpec]]:
    """The Figure 9 workload: ``per_band`` queries per Euclidean-distance band.

    ``bands`` are ``(min_miles, max_miles)`` pairs, e.g.
    ``[(1, 2), (2, 3), ..., (7, 8)]``.
    """
    rng = random.Random(seed)
    result: dict[tuple[float, float], list[QuerySpec]] = {}
    for band in bands:
        lo, hi = band
        result[band] = [
            random_query(network, interval, rng, lo, hi)
            for _ in range(per_band)
        ]
    return result
