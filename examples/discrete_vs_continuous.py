#!/usr/bin/env python3
"""Why the continuous-time method wins: the Figure 10 experiment, in small.

Compares IntAllFastestPaths against the discrete-time baseline (one A* per
discretized leaving instant) on a rush-hour singleFP query, reporting the
accuracy/cost trade-off the paper shows in Figure 10: coarse grids answer
quickly but miss the true optimum; fine grids approach it at an exploding
query cost; the continuous method is exact at a fixed cost.
"""

import time

from repro import (
    DiscreteTimeModel,
    IntAllFastestPaths,
    MetroConfig,
    format_duration,
    make_metro_network,
)
from repro.timeutil import TimeInterval, format_clock, parse_clock

STEPS = [(60.0, "1 hour"), (10.0, "10 min"), (1.0, "1 min"), (1 / 6, "10 sec")]


def main() -> None:
    network = make_metro_network(MetroConfig(width=32, height=32, seed=7))
    # Leaving window [9:00, 9:55] ends just before the inbound slowdown
    # lifts at 10:00: the true optimum is to leave as late as possible, at
    # an instant no coarse grid contains.
    interval = TimeInterval(parse_clock("9:00"), parse_clock("9:55"))
    min_x, min_y, max_x, max_y = network.bounding_box()
    cy = (min_y + max_y) / 2
    source = min(
        network.nodes(), key=lambda n: (n.x - min_x) ** 2 + (n.y - min_y) ** 2
    ).id
    target = min(
        network.nodes(),
        key=lambda n: (n.x - (min_x + max_x) / 2) ** 2 + (n.y - cy) ** 2,
    ).id
    print(f"Query: {source} -> {target} leaving within {interval}\n")

    engine = IntAllFastestPaths(network)
    start = time.perf_counter()
    exact = engine.single_fastest_path(source, target, interval)
    exact_seconds = time.perf_counter() - start
    lo, hi = exact.optimal_intervals[0]
    print(
        f"continuous (CapeCod): {format_duration(exact.optimal_travel_time)}"
        f" leaving within [{format_clock(lo)}, {format_clock(hi)}]"
        f"  |  {exact_seconds * 1000:.0f} ms, one expansion"
    )

    model = DiscreteTimeModel(network)
    print("\ndiscrete-time baseline:")
    print(f"{'step':>8}  {'found':>10}  {'error':>8}  {'cost':>10}  {'vs exact':>9}")
    for step, label in STEPS:
        start = time.perf_counter()
        approx = model.single_fastest_path(source, target, interval, step)
        seconds = time.perf_counter() - start
        error = approx.travel_time - exact.optimal_travel_time
        print(
            f"{label:>8}  {format_duration(approx.travel_time):>10}  "
            f"{'+' + format_duration(error) if error > 1e-9 else 'exact':>8}  "
            f"{seconds * 1000:>8.0f}ms  {seconds / exact_seconds:>8.1f}x"
        )
    print(
        "\nThe discrete model needs one full A* per instant "
        f"({approx.instants} instants at the finest grid) and still only "
        "guarantees grid accuracy; the continuous method is exact once."
    )


if __name__ == "__main__":
    main()
