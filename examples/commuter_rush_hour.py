#!/usr/bin/env python3
"""Morning-commute planning on a metro-area network.

The scenario that motivates the paper: "I may leave for work any time
between 7am and 9am; please suggest all fastest paths."  We generate a
synthetic metro area with the paper's Table 1 speed patterns (inbound
highways drop from 65 to 20 MPH during 7–10am on workdays), pick a commuter
living in the suburbs who works downtown, and answer the allFP query with
the boundary-node estimator.

The output shows the leaving-time partition, how routes shift off the
congested inbound highway as the rush builds, and what the same query looks
like on a Saturday (no congestion: a single answer).
"""

from repro import (
    BoundaryNodeEstimator,
    IntAllFastestPaths,
    MetroConfig,
    RoadClass,
    TimeInterval,
    format_duration,
    make_metro_network,
)
from repro.timeutil import format_clock, parse_clock


def describe_route(network, path) -> str:
    """Summarise a path by road-class mileage."""
    miles: dict[RoadClass, float] = {}
    for u, v in zip(path, path[1:]):
        edge = network.find_edge(u, v)
        if edge.road_class is not None:
            miles[edge.road_class] = miles.get(edge.road_class, 0.0) + edge.distance
    parts = [
        f"{miles[cls]:.1f} mi {cls.value.replace('_', ' ')}"
        for cls in RoadClass
        if cls in miles
    ]
    return f"{len(path) - 1} segments: " + ", ".join(parts)


def pick_commute(network) -> tuple[int, int]:
    """A suburban home at the west end of the highway corridor and a
    downtown office near the centre — the classic inbound commute."""
    min_x, min_y, max_x, max_y = network.bounding_box()
    cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
    home = min(
        network.nodes(),
        key=lambda n: (n.x - min_x) ** 2 + (n.y - cy) ** 2,
    )
    office = min(
        network.nodes(), key=lambda n: (n.x - cx) ** 2 + (n.y - cy) ** 2
    )
    return home.id, office.id


def main() -> None:
    print("Generating a metro-area network with Table 1 speed patterns...")
    network = make_metro_network(MetroConfig(width=32, height=32, seed=2024))
    print(
        f"  {network.node_count} nodes, {network.edge_count} directed edges\n"
    )
    home, office = pick_commute(network)
    engine = IntAllFastestPaths(network, BoundaryNodeEstimator(network, 6, 6))

    window = TimeInterval.from_clock("6:00", "8:00")  # Monday, spanning
    # the 7:00 onset of the inbound slowdown
    print(f"allFP: home (node {home}) -> office (node {office}), leaving {window}")
    result = engine.all_fastest_paths(home, office, window)
    for entry in result:
        depart = entry.interval.start
        travel = result.travel_time_at(min(depart + 0.5, entry.interval.end))
        print(
            f"  {entry.interval}: ~{format_duration(travel)} | "
            f"{describe_route(network, entry.path)}"
        )
    best_leave, best_time = result.best()
    print(
        f"\n  best plan: leave at {format_clock(best_leave)} "
        f"and arrive after {format_duration(best_time)}"
    )
    print(
        f"  ({result.stats.expanded_paths} expanded paths, "
        f"{len(result.distinct_paths)} distinct routes)\n"
    )

    saturday = TimeInterval(
        parse_clock("7:00", day=5), parse_clock("9:00", day=5)
    )
    weekend = engine.all_fastest_paths(home, office, saturday)
    print(f"Same query on a Saturday: {len(weekend.entries)} sub-interval(s);")
    print(
        f"  constant {format_duration(weekend.border.min_value())} — "
        "no congestion, one route serves the whole window."
    )


if __name__ == "__main__":
    main()
