#!/usr/bin/env python3
"""Quickstart: the paper's running example, in ten lines of API.

Builds the three-node network of the paper's Figure 2 (a direct road s->e
and a detour via n whose speeds change around 7am), then asks the two
queries the paper introduces:

* allFP   — every fastest path for a leaving time in [6:50, 7:05],
* singleFP — the single best leaving instant in that window.

Expected output (§4.6 of the paper):

    [6:50, 6:58:30)  -> take s->e        (6 minutes)
    [6:58:30, 7:03:26) -> take s->n->e   (down to 5 minutes)
    [7:03:26, 7:05]  -> take s->e again
"""

from repro import IntAllFastestPaths, TimeInterval, format_duration
from repro.network.generator import (
    EXAMPLE_E,
    EXAMPLE_N,
    EXAMPLE_S,
    paper_example_network,
)

NAMES = {EXAMPLE_S: "s", EXAMPLE_N: "n", EXAMPLE_E: "e"}


def main() -> None:
    network = paper_example_network()
    engine = IntAllFastestPaths(network)
    interval = TimeInterval.from_clock("6:50", "7:05")

    print(f"allFP query: fastest paths s -> e for leaving times {interval}\n")
    result = engine.all_fastest_paths(EXAMPLE_S, EXAMPLE_E, interval)
    for entry in result:
        route = " -> ".join(NAMES[n] for n in entry.path)
        print(f"  {entry.interval}:  {route}")

    single = engine.single_fastest_path(EXAMPLE_S, EXAMPLE_E, interval)
    route = " -> ".join(NAMES[n] for n in single.path)
    windows = ", ".join(
        f"[{TimeInterval(a, b)}"[1:] for a, b in single.optimal_intervals
    )
    print(
        f"\nsingleFP: {route} in {format_duration(single.optimal_travel_time)}"
        f" when leaving within {windows}"
    )
    print(
        f"\n(search expanded {result.stats.expanded_paths} paths; "
        f"the full answer came from one network expansion, not one per instant)"
    )


if __name__ == "__main__":
    main()
