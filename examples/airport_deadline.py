#!/usr/bin/env python3
"""Arrival-interval planning: "my flight boards between 18:30 and 19:40".

The paper's problem statement allows the time interval to constrain either
the leaving time at the source *or* the arrival time at the destination
(§1, §2.1).  This example exercises the arrival-side engine: given an
arrival window at the "airport" (a node on the far side of town) during the
evening rush, it reports for every arrival instant the fastest route and
the *latest* moment you may leave — the number a deadline-bound traveller
actually wants.

It also renders the lower-border (travel time as a function of arrival
time) and the answer partition as ASCII charts.
"""

from repro import (
    ArrivalIntAllFastestPaths,
    MetroConfig,
    TimeInterval,
    format_duration,
    make_metro_network,
)
from repro.analysis.ascii_plot import render_function, render_partition
from repro.timeutil import format_clock, parse_clock


def main() -> None:
    network = make_metro_network(MetroConfig(width=28, height=28, seed=41))
    # Home downtown, airport at the east end of the outbound corridor —
    # which drops to 30 MPH during the 16:00-19:00 evening rush.
    min_x, min_y, max_x, max_y = network.bounding_box()
    cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
    home = min(
        network.nodes(),
        key=lambda n: (n.x - cx) ** 2 + (n.y - (cy + 1.5)) ** 2,
    ).id
    airport = min(
        network.nodes(), key=lambda n: (n.x - max_x) ** 2 + (n.y - cy) ** 2
    ).id

    window = TimeInterval(parse_clock("18:30"), parse_clock("19:40"))
    engine = ArrivalIntAllFastestPaths(network)
    result = engine.all_fastest_paths(home, airport, window)

    print(
        f"Arrive at the airport (node {airport}) from home (node {home}) "
        f"within {window}:\n"
    )
    for entry in result:
        a = entry.interval.start
        leave = result.departure_at(min(a + 0.5, entry.interval.end))
        print(
            f"  arrive {entry.interval}: leave by ~{format_clock(leave)} "
            f"({format_duration(result.travel_time_at(a + 0.5) if entry.interval.length > 1 else result.travel_time_at(a))} door to door, "
            f"{len(entry.path) - 1} segments)"
        )

    print()
    print(
        render_function(
            result.border,
            title="travel time (min) vs arrival time",
            width=56,
            height=10,
        )
    )
    print()
    print(render_partition(result.entries, width=56))
    print(
        f"\nsearch: {result.stats.expanded_paths} expanded paths, "
        f"{len(result.distinct_paths)} distinct routes"
    )


if __name__ == "__main__":
    main()
