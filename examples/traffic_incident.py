#!/usr/bin/env python3
"""Live traffic updates against a CCAM database.

The paper's storage section requires "the appropriate operations to update
the network" (§2.2) — the scenario behind systems like FATES [3], which
refresh road-segment speed knowledge as traffic reports arrive.  This
example:

1. builds a CCAM database for a metro network,
2. plans an allFP morning commute,
3. receives an "incident report" — a crash crawls a stretch of the inbound
   highway all day — and applies it to the *on-disk* network with
   ``update_edge_pattern``,
4. replans: the partition changes and the route detours around the crash,
5. reopens the database read-only to show the update persisted.
"""

import tempfile
from pathlib import Path

from repro import (
    CCAMStore,
    CapeCodPattern,
    DailySpeedPattern,
    IntAllFastestPaths,
    MetroConfig,
    NaiveEstimator,
    RoadClass,
    TimeInterval,
    format_duration,
    make_metro_network,
)
from repro.patterns.categories import NON_WORKDAY, WORKDAY
from repro.timeutil import parse_clock


def crawl() -> CapeCodPattern:
    """5 MPH, all day, every day — the incident pattern."""
    daily = DailySpeedPattern.from_mph([(0.0, 5.0)])
    return CapeCodPattern({WORKDAY: daily, NON_WORKDAY: daily})


def plan(store, source, target, window) -> None:
    engine = IntAllFastestPaths(store, NaiveEstimator(store))
    result = engine.all_fastest_paths(source, target, window)
    for entry in result:
        mid = 0.5 * (entry.interval.start + entry.interval.end)
        print(
            f"    {entry.interval}: {len(entry.path) - 1} segments, "
            f"~{format_duration(result.travel_time_at(mid))}"
        )


def main() -> None:
    network = make_metro_network(MetroConfig(width=20, height=20, seed=99))
    min_x, min_y, max_x, max_y = network.bounding_box()
    cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2
    home = min(
        network.nodes(), key=lambda n: (n.x - min_x) ** 2 + (n.y - cy) ** 2
    ).id
    office = min(
        network.nodes(), key=lambda n: (n.x - cx) ** 2 + (n.y - cy) ** 2
    ).id
    window = TimeInterval(parse_clock("6:00"), parse_clock("8:00"))

    with tempfile.TemporaryDirectory() as tmp:
        db = Path(tmp) / "metro.ccam"
        CCAMStore.build(network, db).close()

        with CCAMStore.open(db, writable=True) as store:
            print(f"Commute {home} -> {office}, leaving {window}, before:\n")
            plan(store, home, office, window)

            # Incident: crawl on the first few inbound-highway segments
            # along the corridor the commute uses.
            incidents = 0
            for nid in store.node_ids():
                for edge in store.outgoing(nid):
                    if (
                        edge.road_class is RoadClass.INBOUND_HIGHWAY
                        and store.location(nid)[0] < cx - 1.0
                    ):
                        store.update_edge_pattern(nid, edge.target, crawl())
                        incidents += 1
            print(
                f"\n  !! incident: {incidents} western inbound-highway "
                "segments now crawl at 5 MPH\n"
            )
            print("  after the update (fresh engine, same disk file):\n")
            plan(store, home, office, window)

        with CCAMStore.open(db) as reopened:
            print("\nreopened read-only — update persisted:\n")
            plan(reopened, home, office, window)


if __name__ == "__main__":
    main()
