#!/usr/bin/env python3
"""Running queries straight off disk with the CCAM store.

The paper assumes the road network is too large for memory and stores it
with the Connectivity-Clustered Access Method (§2.2).  This example builds
a CCAM database for a metro network (2048-byte pages, B+-tree over node
ids), then runs the same allFP query against the in-memory network and the
disk store, showing identical answers plus the I/O profile of the
disk run: physical page reads, logical reads, and buffer hit rate.

It also demonstrates the effect of the connectivity clustering: the same
database packed purely by Hilbert order needs more physical reads per query.
"""

import tempfile
from pathlib import Path

from repro import (
    CCAMStore,
    IntAllFastestPaths,
    MetroConfig,
    NaiveEstimator,
    TimeInterval,
    make_metro_network,
)
from repro.timeutil import parse_clock


def run_query(store_or_network, source, target, interval):
    engine = IntAllFastestPaths(
        store_or_network, NaiveEstimator(store_or_network)
    )
    return engine.all_fastest_paths(source, target, interval)


def main() -> None:
    network = make_metro_network(MetroConfig(width=28, height=28, seed=12))
    source, target = 0, network.node_count - 1
    interval = TimeInterval(parse_clock("7:00"), parse_clock("9:00"))

    with tempfile.TemporaryDirectory() as tmp:
        for strategy in ("connectivity", "hilbert"):
            path = Path(tmp) / f"metro-{strategy}.ccam"
            store = CCAMStore.build(network, path, strategy=strategy)
            info = store.build_info
            print(
                f"[{strategy:>12}] built {path.name}: "
                f"{info['data_pages']} data pages + {info['tree_pages']} "
                f"index pages, {info['clustering_quality']:.1%} of edges "
                "intra-page"
            )

            store.drop_buffer()
            store.reset_io_counters()
            disk_result = run_query(store, source, target, interval)
            print(
                f"               allFP off disk: "
                f"{len(disk_result.entries)} sub-interval(s), "
                f"{disk_result.stats.page_reads} physical page reads, "
                f"{store.logical_reads} logical, "
                f"{store.buffer_hit_rate:.1%} buffer hit rate"
            )
            store.close()

    memory_result = run_query(network, source, target, interval)
    agreement = all(
        abs(
            memory_result.travel_time_at(t) - disk_result.travel_time_at(t)
        ) < 1e-6
        for t in interval.sample(13)
    )
    print(
        f"\nmemory vs disk answers agree at 13 sampled instants: {agreement}"
    )
    print("The engine is identical code — only the network accessor differs.")


if __name__ == "__main__":
    main()
