#!/usr/bin/env python3
"""Time-interval kNN: which lunch spot is 'nearest' depends on when you go.

The paper's conclusion proposes studying classic spatial queries (kNN, …)
under fastest travel time instead of distance (§7).  This example plants a
handful of "restaurants" around a metro network and asks, from an office
downtown:

1. rank the restaurants by their best-case travel time if I can leave any
   time between 11:30 and 13:30 (plain time-interval kNN), and
2. partition that window by which restaurant is *nearest at each instant* —
   the answer changes as the local-city lunch... well, as patterns shift.

To make the time dependence vivid we run the same queries over the evening
rush (16:00–19:00), when the outbound highway drags some candidates away.
"""

from repro import (
    IntAllFastestPaths,
    MetroConfig,
    TimeInterval,
    format_duration,
    interval_knn,
    make_metro_network,
    nearest_partition,
)
from repro.analysis.ascii_plot import render_partition
from repro.core.results import AllFPEntry
from repro.timeutil import format_clock, parse_clock


def main() -> None:
    network = make_metro_network(MetroConfig(width=24, height=24, seed=77))
    min_x, min_y, max_x, max_y = network.bounding_box()
    cx, cy = (min_x + max_x) / 2, (min_y + max_y) / 2

    def node_near(x: float, y: float) -> int:
        return min(
            network.nodes(), key=lambda n: (n.x - x) ** 2 + (n.y - y) ** 2
        ).id

    office = node_near(cx - 2.0, cy + 0.4)
    restaurants = {
        node_near(cx + 1.8, cy): "Highway Diner (east, across the corridor)",
        node_near(cx - 2.0, cy + 2.6): "North Grill (local streets only)",
        node_near(cx - 0.2, cy + 2.2): "Corner Cafe (northeast, local)",
    }

    for label, window in (
        ("midday", TimeInterval(parse_clock("11:30"), parse_clock("13:30"))),
        ("evening rush", TimeInterval(parse_clock("15:30"), parse_clock("19:30"))),
    ):
        print(f"=== {label}: leaving the office any time within {window}\n")
        result = interval_knn(
            network, office, list(restaurants), k=3, interval=window
        )
        for neighbor in result:
            best_lo, best_hi = neighbor.optimal_intervals[0]
            print(
                f"  #{neighbor.rank} {restaurants[neighbor.node]}: "
                f"{format_duration(neighbor.min_travel_time)} if leaving "
                f"in [{format_clock(best_lo)}, {format_clock(best_hi)}]"
            )
        entries, border = nearest_partition(
            network, office, list(restaurants), window
        )
        print("\n  nearest restaurant by leaving instant:")
        for entry in entries:
            print(f"    {entry.interval}: {restaurants[entry.node]}")
        bar = render_partition(
            [
                AllFPEntry(e.interval, (e.node,))
                for e in entries
            ],
            width=56,
        )
        print("\n" + "\n".join("  " + line for line in bar.splitlines()))
        print()


if __name__ == "__main__":
    main()
